#include "forest/tree.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

namespace cow_debug {

#ifndef NDEBUG
namespace {
std::atomic<int64_t> g_live_tree_nodes{0};
}  // namespace

NodeTally::NodeTally() {
  g_live_tree_nodes.fetch_add(1, std::memory_order_relaxed);
}
NodeTally::NodeTally(const NodeTally&) {
  g_live_tree_nodes.fetch_add(1, std::memory_order_relaxed);
}
NodeTally::~NodeTally() {
  g_live_tree_nodes.fetch_sub(1, std::memory_order_relaxed);
}

int64_t LiveTreeNodes() {
  return g_live_tree_nodes.load(std::memory_order_relaxed);
}
#else
int64_t LiveTreeNodes() { return 0; }
#endif

void RefreshLiveNodesGauge() {
  static obs::Gauge* live = obs::GetGauge("forest.live_nodes");
  live->Set(LiveTreeNodes());
}

}  // namespace cow_debug

TreeNode::TreeNode(const TreeNode& other)
    : count(other.count),
      pos(other.pos),
      attr(other.attr),
      threshold(other.threshold),
      is_random(other.is_random),
      stats(other.stats),
      left(other.left),
      right(other.right),
      rows(other.rows),
      lazy(other.lazy == nullptr ? nullptr
                                 : std::make_unique<LazyTag>(*other.lazy)) {}

namespace {

// Unlearning work, attributed per event class. Retrains are rare (that is
// DaRE's whole point), so the per-retrain histogram/counter updates are
// off the common path; the bulk counters are added once per batch.
struct UnlearnMetrics {
  obs::Counter* nodes_visited = obs::GetCounter("forest.unlearn.nodes_visited");
  obs::Counter* nodes_updated = obs::GetCounter("forest.unlearn.nodes_updated");
  obs::Counter* leaves_updated =
      obs::GetCounter("forest.unlearn.leaves_updated");
  obs::Counter* subtrees_retrained =
      obs::GetCounter("forest.unlearn.subtrees_retrained");
  obs::Counter* rows_retrained =
      obs::GetCounter("forest.unlearn.rows_retrained");
  /// Nodes privately copied because a mutation hit a node shared with a
  /// CoW clone. Zero while a forest has no live clones.
  obs::Counter* cow_nodes_copied =
      obs::GetCounter("forest.unlearn.cow_nodes_copied");
  /// Retrains of nodes in the random upper levels ("resampled" random
  /// splits) vs. greedy nodes below them.
  obs::Counter* retrain_random_nodes =
      obs::GetCounter("forest.unlearn.retrain_random_nodes");
  obs::Counter* retrain_greedy_nodes =
      obs::GetCounter("forest.unlearn.retrain_greedy_nodes");
  /// Depth at which each subtree retrain was triggered.
  obs::Histogram* retrain_depth =
      obs::GetHistogram("forest.unlearn.retrain_depth");

  static UnlearnMetrics& Get() {
    static UnlearnMetrics metrics;
    return metrics;
  }
};

void RecordBatch(const DeletionStats& s) {
  UnlearnMetrics& m = UnlearnMetrics::Get();
  m.nodes_visited->Inc(s.nodes_visited);
  m.nodes_updated->Inc(s.nodes_updated);
  m.leaves_updated->Inc(s.leaves_updated);
  m.subtrees_retrained->Inc(s.subtrees_retrained);
  m.rows_retrained->Inc(s.rows_retrained);
}

void RecordRetrain(int depth, int random_depth) {
  UnlearnMetrics& m = UnlearnMetrics::Get();
  m.retrain_depth->Record(depth);
  (depth < random_depth ? m.retrain_random_nodes : m.retrain_greedy_nodes)
      ->Inc();
}

// Lazy-unlearn work (ForestConfig::lazy_unlearn). forest.lazy.budget_flushes
// lives in forest.cc next to the budget check that fires it.
struct LazyMetrics {
  /// Doomed rows parked on a LazyTag instead of retrained through.
  obs::Counter* tagged_rows = obs::GetCounter("forest.lazy.tagged_rows");
  /// Tagged subtrees rebuilt by a flush, and the doomed rows they retired.
  obs::Counter* flushes = obs::GetCounter("forest.lazy.flushes");
  obs::Counter* flush_rows = obs::GetCounter("forest.lazy.flush_rows");

  static LazyMetrics& Get() {
    static LazyMetrics metrics;
    return metrics;
  }
};

/// Appends every tag's doomed rows in the subtree to *doomed (tags can nest
/// — an older tag sits below a later ancestor's — so the walk does not prune
/// at a tag) and counts the tags into *tags.
void GatherTagRows(const TreeNode* node, std::vector<RowId>* doomed,
                   int64_t* tags) {
  if (node->lazy != nullptr) {
    doomed->insert(doomed->end(), node->lazy->doomed.begin(),
                   node->lazy->doomed.end());
    ++*tags;
  }
  if (node->is_leaf()) return;
  GatherTagRows(node->left.get(), doomed, tags);
  GatherTagRows(node->right.get(), doomed, tags);
}

}  // namespace

DareTree DareTree::Build(std::shared_ptr<const TrainingStore> store,
                         const std::vector<RowId>& rows, int tree_id,
                         const ForestConfig& config) {
  obs::TraceSpan span("tree.build",
                      {{"tree_id", tree_id},
                       {"rows", static_cast<int64_t>(rows.size())}});
  DareTree tree;
  tree.store_ = std::move(store);
  tree.config_ = config;
  tree.tree_id_ = tree_id;
  // Canonical build order: leaf lists are kept sorted ascending everywhere
  // (here and at every later rebuild), so the serialized tree is a pure
  // function of the row multiset — the property FlushLazy's byte-identity
  // with the eager kernel rests on (DESIGN.md §6 invariant 9).
  std::vector<RowId> sorted = rows;
  std::sort(sorted.begin(), sorted.end());
  tree.root_ = tree.BuildNode(sorted, /*depth=*/0,
                              RootPathKey(config.seed, tree_id));
  tree.generation_ = arena_internal::NextGeneration();
  tree.arena_slot_ = std::make_shared<arena_internal::ArenaSlot>();
  return tree;
}

std::shared_ptr<TreeNode> DareTree::BuildNode(const std::vector<RowId>& rows,
                                              int depth, uint64_t path_key) {
  auto node = std::make_shared<TreeNode>();
  NodeStats stats;
  stats.ComputeFromRows(
      *store_, rows,
      ChooseCandidateAttrs(path_key, store_->num_attrs(), depth, config_));
  node->count = stats.count;
  node->pos = stats.pos;

  const SplitDecision decision =
      DecideSplit(stats, *store_, depth, path_key, config_);
  if (decision.is_leaf) {
    node->rows = rows;
    return node;
  }

  node->attr = decision.attr;
  node->threshold = decision.threshold;
  node->is_random = decision.is_random;
  node->stats = std::move(stats);

  std::vector<RowId> left_rows;
  std::vector<RowId> right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (RowId r : rows) {
    (store_->code(r, decision.attr) <= decision.threshold ? left_rows
                                                          : right_rows)
        .push_back(r);
  }
  node->left = BuildNode(left_rows, depth + 1, ChildPathKey(path_key, 0));
  node->right = BuildNode(right_rows, depth + 1, ChildPathKey(path_key, 1));
  return node;
}

std::shared_ptr<TreeNode> DareTree::BuildNodeKernel(RowId* begin, RowId* end,
                                                    int depth,
                                                    uint64_t path_key,
                                                    DeletionScratch* scratch,
                                                    NodeStats* seed_stats,
                                                    int64_t pos_hint) {
  auto node = std::make_shared<TreeNode>();
  const int64_t n = end - begin;
  int64_t pos = 0;
  if (seed_stats != nullptr) {
    FUME_DCHECK_EQ(seed_stats->count, n);
    pos = seed_stats->pos;
  } else if (pos_hint >= 0) {
    pos = pos_hint;
  } else {
    for (RowId* p = begin; p != end; ++p) pos += store_->label(*p);
  }
  node->count = n;
  node->pos = pos;
  // Histogram-free leaf conditions — must mirror DecideSplit's first three
  // checks (split_stats.cc) exactly: a node they force into a leaf never
  // reads its histograms, so skipping ComputeFromRows cannot change bytes.
  if (n < config_.min_samples_split || pos == 0 || pos == n ||
      depth >= config_.max_depth) {
    node->rows.assign(begin, end);
    return node;
  }

  NodeStats stats;
  if (seed_stats != nullptr) {
    stats = std::move(*seed_stats);
  } else {
    stats.ComputeFromRows(
        *store_, begin, n,
        ChooseCandidateAttrs(path_key, store_->num_attrs(), depth, config_));
  }
  const SplitDecision decision =
      DecideSplit(stats, *store_, depth, path_key, config_);
  if (decision.is_leaf) {
    node->rows.assign(begin, end);
    return node;
  }

  node->attr = decision.attr;
  node->threshold = decision.threshold;
  node->is_random = decision.is_random;
  node->stats = std::move(stats);

  int64_t left_pos = 0;
  RowId* mid = PartitionBySplit(node.get(), begin, end, scratch, &left_pos);
  node->left = BuildNodeKernel(begin, mid, depth + 1,
                               ChildPathKey(path_key, 0), scratch,
                               /*seed_stats=*/nullptr, left_pos);
  node->right = BuildNodeKernel(mid, end, depth + 1,
                                ChildPathKey(path_key, 1), scratch,
                                /*seed_stats=*/nullptr, pos - left_pos);
  return node;
}

void DareTree::CollectLeafRows(const TreeNode* node, std::vector<RowId>* out) {
  if (node->is_leaf()) {
    out->insert(out->end(), node->rows.begin(), node->rows.end());
    return;
  }
  CollectLeafRows(node->left.get(), out);
  CollectLeafRows(node->right.get(), out);
}

int64_t DareTree::CollectLeafRowsFiltered(const TreeNode* node,
                                          const DeletionScratch& scratch,
                                          std::vector<RowId>* out) {
  if (node->is_leaf()) {
    int64_t dropped = 0;
    for (RowId r : node->rows) {
      if (scratch.IsDoomed(r)) {
        ++dropped;
      } else {
        out->push_back(r);
      }
    }
    return dropped;
  }
  return CollectLeafRowsFiltered(node->left.get(), scratch, out) +
         CollectLeafRowsFiltered(node->right.get(), scratch, out);
}

TreeNode* DareTree::Mutable(std::shared_ptr<TreeNode>* slot,
                            DeletionStats* stats_out) {
  // use_count() == 1 means this tree holds the only reference: another
  // forest can neither reach the node nor (being confined to its own
  // thread) resurrect a reference to it, so in-place mutation is safe and
  // keeps the node's address stable. A concurrent release by a clone being
  // destroyed can at worst leave a stale >1, which only costs a spurious
  // private copy.
  if ((*slot).use_count() > 1) {
    UnlearnMetrics::Get().cow_nodes_copied->Inc();
    ++stats_out->nodes_copied;
    *slot = std::make_shared<TreeNode>(**slot);  // shallow: children shared
  }
  return slot->get();
}

void DareTree::BumpGeneration() {
  generation_ = arena_internal::NextGeneration();
  if (arena_slot_ == nullptr) return;
  // Drop the stale arena eagerly (the generation check alone would keep it
  // correct) so what-if churn doesn't hold dead arenas alive.
  if (arena_slot_->arena.exchange(nullptr) != nullptr) {
    static obs::Counter* invalidates =
        obs::GetCounter("forest.arena.invalidate");
    invalidates->Inc();
  }
}

std::shared_ptr<const TreeArena> DareTree::arena() const {
  // A stale (tagged) tree must never be compiled into an arena — traversal
  // entry points flush first (DareForest::EnsureFlushed).
  FUME_DCHECK_EQ(lazy_nodes_, 0);
  if (arena_slot_ == nullptr) return nullptr;
  static obs::Counter* reuses = obs::GetCounter("forest.arena.reuse");
  std::shared_ptr<const TreeArena> cur = arena_slot_->arena.load();
  if (cur != nullptr && cur->generation() == generation_) {
    reuses->Inc();
    return cur;
  }
  std::lock_guard<std::mutex> lock(arena_slot_->mu);
  cur = arena_slot_->arena.load();
  if (cur != nullptr && cur->generation() == generation_) {
    reuses->Inc();
    return cur;
  }
  // The last compiled node count is the best size hint available — what-if
  // mutations move it by at most a retrained subtree. The slot remembers it
  // across eager invalidation, so post-mutation recompiles reserve too.
  std::shared_ptr<const TreeArena> fresh = TreeArena::Compile(
      root_.get(), generation_,
      cur == nullptr ? arena_slot_->size_hint.load(std::memory_order_relaxed)
                     : cur->num_nodes());
  arena_slot_->size_hint.store(fresh->num_nodes(), std::memory_order_relaxed);
  arena_slot_->arena.store(fresh);
  return fresh;
}

void DareTree::DeleteRows(const std::vector<RowId>& rows,
                          DeletionStats* stats_out) {
  if (rows.empty() || root_ == nullptr) return;
  if (!config_.batched_unlearn_kernel) {
    BumpGeneration();
    DeletionStats local;
    DeleteFromNode(&root_, rows, /*depth=*/0,
                   RootPathKey(config_.seed, tree_id_), &local);
    RecordBatch(local);
    if (stats_out != nullptr) stats_out->Add(local);
    return;
  }
  DeletionScratch scratch;
  scratch.BeginBatch(store_->num_rows());
  for (RowId r : rows) FUME_CHECK(scratch.MarkDoomed(r));
  DeleteRows(rows, stats_out, &scratch);
}

void DareTree::DeleteRows(const std::vector<RowId>& rows,
                          DeletionStats* stats_out, DeletionScratch* scratch) {
  if (rows.empty() || root_ == nullptr) return;
  BumpGeneration();
  DeletionStats local;
  if (config_.batched_unlearn_kernel) {
    scratch->route.assign(rows.begin(), rows.end());
    scratch->settled = 0;
    if (config_.lazy_unlearn) {
      DeleteFromNodeLazy(&root_, scratch->route.data(),
                         scratch->route.data() + scratch->route.size(),
                         /*depth=*/0, RootPathKey(config_.seed, tree_id_),
                         &local, scratch);
    } else {
      DeleteFromNodeKernel(&root_, scratch->route.data(),
                           scratch->route.data() + scratch->route.size(),
                           /*depth=*/0, RootPathKey(config_.seed, tree_id_),
                           &local, scratch);
    }
    // Batch-level replacement for the baseline's per-leaf membership count:
    // every doomed row must have been settled exactly once in this tree,
    // either removed at a leaf or filtered out of a retrain collection.
    FUME_CHECK_EQ(scratch->settled, static_cast<int64_t>(rows.size()));
  } else {
    DeleteFromNode(&root_, rows, /*depth=*/0,
                   RootPathKey(config_.seed, tree_id_), &local);
  }
  RecordBatch(local);
  if (stats_out != nullptr) stats_out->Add(local);
}

void DareTree::DeleteFromNode(std::shared_ptr<TreeNode>* slot,
                              const std::vector<RowId>& rows, int depth,
                              uint64_t path_key, DeletionStats* stats_out) {
  TreeNode* node = Mutable(slot, stats_out);
  ++stats_out->nodes_visited;

  if (node->is_leaf()) {
    // A leaf can never become an internal node under deletion (leaf
    // conditions are monotone in shrinking data; see DESIGN.md §6.1), so
    // only the membership list and label counts change.
    ++stats_out->leaves_updated;
    std::unordered_set<RowId> doomed(rows.begin(), rows.end());
    int64_t removed_pos = 0;
    size_t kept = 0;
    for (size_t i = 0; i < node->rows.size(); ++i) {
      if (doomed.count(node->rows[i]) > 0) {
        removed_pos += store_->label(node->rows[i]);
      } else {
        node->rows[kept++] = node->rows[i];
      }
    }
    FUME_CHECK_EQ(node->rows.size() - kept, rows.size());
    node->rows.resize(kept);
    node->count -= static_cast<int64_t>(rows.size());
    node->pos -= removed_pos;
    return;
  }

  // Internal node: decrement cached statistics, then re-evaluate the split
  // decision from the updated statistics alone.
  ++stats_out->nodes_updated;
  for (RowId r : rows) node->stats.RemoveRow(*store_, r);
  node->count = node->stats.count;
  node->pos = node->stats.pos;

  const SplitDecision decision =
      DecideSplit(node->stats, *store_, depth, path_key, config_);
  SplitDecision current;
  current.is_leaf = false;
  current.attr = node->attr;
  current.threshold = node->threshold;
  current.is_random = node->is_random;

  if (!decision.SameSplit(current)) {
    // The split this node would be built with has changed: retrain the
    // subtree from its remaining instances (DaRE's retrain-as-needed step).
    ++stats_out->subtrees_retrained;
    RecordRetrain(depth, config_.random_depth);
    std::vector<RowId> remaining;
    CollectLeafRows(node, &remaining);
    std::unordered_set<RowId> doomed(rows.begin(), rows.end());
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](RowId r) { return doomed.count(r); }),
                    remaining.end());
    // Canonical rebuild order: every retrain sorts its row set ascending, so
    // leaf lists — and hence serialized bytes — depend only on the surviving
    // row multiset, not on which intermediate retrains the op sequence took.
    // This is what lets a deferred FlushLazy rebuild reproduce the eager
    // result byte-for-byte.
    std::sort(remaining.begin(), remaining.end());
    stats_out->rows_retrained += static_cast<int64_t>(remaining.size());
    std::shared_ptr<TreeNode> rebuilt = BuildNode(remaining, depth, path_key);
    *node = std::move(*rebuilt);
    return;
  }

  // Same split: route the doomed rows to the children they live in.
  std::vector<RowId> left_rows;
  std::vector<RowId> right_rows;
  for (RowId r : rows) {
    (store_->code(r, node->attr) <= node->threshold ? left_rows : right_rows)
        .push_back(r);
  }
  if (!left_rows.empty()) {
    DeleteFromNode(&node->left, left_rows, depth + 1,
                   ChildPathKey(path_key, 0), stats_out);
  }
  if (!right_rows.empty()) {
    DeleteFromNode(&node->right, right_rows, depth + 1,
                   ChildPathKey(path_key, 1), stats_out);
  }
}

RowId* DareTree::PartitionBySplit(const TreeNode* node, RowId* begin,
                                  RowId* end, DeletionScratch* scratch,
                                  int64_t* left_pos_out) const {
  std::vector<RowId>& spill = scratch->partition_tmp;
  spill.clear();
  RowId* write = begin;
  int64_t left_pos = 0;
  for (RowId* p = begin; p != end; ++p) {
    const RowId r = *p;
    if (store_->code(r, node->attr) <= node->threshold) {
      if (left_pos_out != nullptr) left_pos += store_->label(r);
      *write++ = r;
    } else {
      spill.push_back(r);
    }
  }
  std::copy(spill.begin(), spill.end(), write);
  if (left_pos_out != nullptr) *left_pos_out = left_pos;
  return write;
}

void DareTree::DeleteFromNodeKernel(std::shared_ptr<TreeNode>* slot,
                                    RowId* begin, RowId* end, int depth,
                                    uint64_t path_key,
                                    DeletionStats* stats_out,
                                    DeletionScratch* scratch) {
  TreeNode* node = Mutable(slot, stats_out);
  ++stats_out->nodes_visited;
  const int64_t n = end - begin;

  if (node->is_leaf()) {
    // A leaf can never become an internal node under deletion (leaf
    // conditions are monotone in shrinking data; see DESIGN.md §6.1), so
    // only the membership list and label counts change. Doomed membership
    // comes from the batch-wide epoch stamps — no per-leaf set build.
    ++stats_out->leaves_updated;
    int64_t removed_pos = 0;
    size_t kept = 0;
    for (size_t i = 0; i < node->rows.size(); ++i) {
      const RowId r = node->rows[i];
      if (scratch->IsDoomed(r)) {
        removed_pos += store_->label(r);
      } else {
        node->rows[kept++] = r;
      }
    }
    const int64_t removed = static_cast<int64_t>(node->rows.size() - kept);
    // Strict per-leaf form kept in debug builds; release builds rely on the
    // per-tree settled tally in DeleteRows.
    FUME_DCHECK_EQ(removed, n);
    scratch->settled += removed;
    node->rows.resize(kept);
    node->count -= removed;
    node->pos -= removed_pos;
    return;
  }

  // Internal node: one fused pass decrements the cached statistics AND
  // stable-partitions the routed span around the current split (each row's
  // store line is touched exactly once), then the split decision is
  // re-evaluated as usual. On the rare decision flip the partition work is
  // discarded — the retrain rebuilds from the collected remaining rows and
  // never re-reads the (reordered, abandoned) span.
  ++stats_out->nodes_updated;
  RowId* mid = node->stats.RemoveRowsAndPartition(
      *store_, begin, end, node->attr, node->threshold,
      &scratch->partition_tmp);
  node->count = node->stats.count;
  node->pos = node->stats.pos;

  const SplitDecision decision =
      DecideSplit(node->stats, *store_, depth, path_key, config_);
  SplitDecision current;
  current.is_leaf = false;
  current.attr = node->attr;
  current.threshold = node->threshold;
  current.is_random = node->is_random;

  if (!decision.SameSplit(current)) {
    ++stats_out->subtrees_retrained;
    RecordRetrain(depth, config_.random_depth);
    std::vector<RowId>& remaining = scratch->remaining;
    remaining.clear();
    const int64_t filtered = CollectLeafRowsFiltered(node, *scratch, &remaining);
    FUME_DCHECK_EQ(filtered, n);
    scratch->settled += filtered;
    // Canonical rebuild order (see DeleteFromNode).
    std::sort(remaining.begin(), remaining.end());
    stats_out->rows_retrained += static_cast<int64_t>(remaining.size());
    std::shared_ptr<TreeNode> rebuilt = BuildNodeKernel(
        remaining.data(), remaining.data() + remaining.size(), depth, path_key,
        scratch, &node->stats);
    *node = std::move(*rebuilt);
    return;
  }

  // Same split: the fused pass above already partitioned the span — the
  // routed subsets (and their order) match the baseline's left/right
  // vectors without allocating them.
  if (mid != begin) {
    DeleteFromNodeKernel(&node->left, begin, mid, depth + 1,
                         ChildPathKey(path_key, 0), stats_out, scratch);
  }
  if (mid != end) {
    DeleteFromNodeKernel(&node->right, mid, end, depth + 1,
                         ChildPathKey(path_key, 1), stats_out, scratch);
  }
}

void DareTree::DeleteFromNodeLazy(std::shared_ptr<TreeNode>* slot,
                                  RowId* begin, RowId* end, int depth,
                                  uint64_t path_key, DeletionStats* stats_out,
                                  DeletionScratch* scratch) {
  TreeNode* node = Mutable(slot, stats_out);
  ++stats_out->nodes_visited;
  const int64_t n = end - begin;

  if (node->is_leaf()) {
    // Same in-place membership removal as the eager kernel (leaves never
    // retrain under deletion, so there is nothing to defer).
    ++stats_out->leaves_updated;
    int64_t removed_pos = 0;
    size_t kept = 0;
    for (size_t i = 0; i < node->rows.size(); ++i) {
      const RowId r = node->rows[i];
      if (scratch->IsDoomed(r)) {
        removed_pos += store_->label(r);
      } else {
        node->rows[kept++] = r;
      }
    }
    const int64_t removed = static_cast<int64_t>(node->rows.size() - kept);
    FUME_DCHECK_EQ(removed, n);
    scratch->settled += removed;
    node->rows.resize(kept);
    node->count -= removed;
    node->pos -= removed_pos;
    return;
  }

  if (node->lazy != nullptr) {
    // The subtree is already stale: keep this node's histograms exact (at
    // flush they seed the rebuild) and park the routed rows on the tag —
    // nothing below is touched, which is the whole saving.
    ++stats_out->nodes_updated;
    node->stats.RemoveRows(*store_, begin, n);
    node->count = node->stats.count;
    node->pos = node->stats.pos;
    node->lazy->doomed.insert(node->lazy->doomed.end(), begin, end);
    lazy_rows_ += n;
    scratch->settled += n;
    LazyMetrics::Get().tagged_rows->Inc(n);
    return;
  }

  // Untagged internal node: same fused stats-update + partition and split
  // re-evaluation as the eager kernel, so every split decision above a tag
  // stays exact — lazy and eager diverge only below a flipped node.
  ++stats_out->nodes_updated;
  RowId* mid = node->stats.RemoveRowsAndPartition(
      *store_, begin, end, node->attr, node->threshold,
      &scratch->partition_tmp);
  node->count = node->stats.count;
  node->pos = node->stats.pos;

  const SplitDecision decision =
      DecideSplit(node->stats, *store_, depth, path_key, config_);
  SplitDecision current;
  current.is_leaf = false;
  current.attr = node->attr;
  current.threshold = node->threshold;
  current.is_random = node->is_random;

  if (!decision.SameSplit(current)) {
    // Decision flip — where the eager kernel retrains, lazy installs a tag
    // and returns. The (reordered, abandoned) span order does not matter:
    // the tag is a set, and the flush rebuild sorts canonically anyway.
    TagNode(node, begin, end);
    scratch->settled += n;
    return;
  }

  if (mid != begin) {
    DeleteFromNodeLazy(&node->left, begin, mid, depth + 1,
                       ChildPathKey(path_key, 0), stats_out, scratch);
  }
  if (mid != end) {
    DeleteFromNodeLazy(&node->right, mid, end, depth + 1,
                       ChildPathKey(path_key, 1), stats_out, scratch);
  }
}

void DareTree::TagNode(TreeNode* node, const RowId* begin, const RowId* end) {
  FUME_DCHECK(node->lazy == nullptr);
  node->lazy = std::make_unique<LazyTag>();
  node->lazy->doomed.assign(begin, end);
  const int64_t n = end - begin;
  ++lazy_nodes_;
  lazy_rows_ += n;
  LazyMetrics::Get().tagged_rows->Inc(n);
}

bool DareTree::SubtreeHasTag(const TreeNode* node) {
  if (node->lazy != nullptr) return true;
  if (node->is_leaf()) return false;
  return SubtreeHasTag(node->left.get()) || SubtreeHasTag(node->right.get());
}

void DareTree::FlushNode(std::shared_ptr<TreeNode>* slot, int depth,
                         uint64_t path_key, DeletionStats* stats_out,
                         DeletionScratch* scratch) {
  if (!SubtreeHasTag(slot->get())) return;
  TreeNode* node = Mutable(slot, stats_out);
  if (node->lazy == nullptr) {
    FlushNode(&node->left, depth + 1, ChildPathKey(path_key, 0), stats_out,
              scratch);
    FlushNode(&node->right, depth + 1, ChildPathKey(path_key, 1), stats_out,
              scratch);
    return;
  }

  // Topmost tag on this path. Gather its doomed rows plus those of any
  // older tags buried deeper (the whole subtree is stale and is rebuilt
  // from its surviving rows in one go, discarding the buried tags).
  std::vector<RowId> doomed = std::move(node->lazy->doomed);
  int64_t tags_cleared = 1;
  GatherTagRows(node->left.get(), &doomed, &tags_cleared);
  GatherTagRows(node->right.get(), &doomed, &tags_cleared);

  scratch->BeginBatch(store_->num_rows());
  for (RowId r : doomed) FUME_CHECK(scratch->MarkDoomed(r));
  std::vector<RowId>& remaining = scratch->remaining;
  remaining.clear();
  const int64_t filtered = CollectLeafRowsFiltered(node, *scratch, &remaining);
  FUME_CHECK_EQ(filtered, static_cast<int64_t>(doomed.size()));
  // Canonical rebuild order (see DeleteFromNode) — this sort is what makes
  // the deferred rebuild land on the eager kernel's exact bytes.
  std::sort(remaining.begin(), remaining.end());

  ++stats_out->subtrees_retrained;
  RecordRetrain(depth, config_.random_depth);
  stats_out->rows_retrained += static_cast<int64_t>(remaining.size());
  // The tag node's stats were decremented exactly on every deferred batch,
  // so they seed the rebuild just like an eager retrain's would.
  std::shared_ptr<TreeNode> rebuilt = BuildNodeKernel(
      remaining.data(), remaining.data() + remaining.size(), depth, path_key,
      scratch, &node->stats);
  *node = std::move(*rebuilt);  // clears node->lazy (rebuilt has none)

  lazy_nodes_ -= tags_cleared;
  lazy_rows_ -= static_cast<int64_t>(doomed.size());
  LazyMetrics& m = LazyMetrics::Get();
  m.flushes->Inc();
  m.flush_rows->Inc(static_cast<int64_t>(doomed.size()));
}

void DareTree::FlushLazy(DeletionStats* stats_out, DeletionScratch* scratch) {
  if (lazy_nodes_ == 0 || root_ == nullptr) return;
  BumpGeneration();
  DeletionStats local;
  FlushNode(&root_, /*depth=*/0, RootPathKey(config_.seed, tree_id_), &local,
            scratch);
  // Every deferred row and tag must have been retired by the rebuilds.
  FUME_CHECK_EQ(lazy_nodes_, 0);
  FUME_CHECK_EQ(lazy_rows_, 0);
  RecordBatch(local);
  if (stats_out != nullptr) stats_out->Add(local);
}

void DareTree::SetLazyUnlearn(bool on) {
  FUME_CHECK(!on || config_.batched_unlearn_kernel);
  FUME_CHECK(on || lazy_nodes_ == 0);
  config_.lazy_unlearn = on;
}

void DareTree::AddRows(const std::vector<RowId>& rows,
                       DeletionStats* stats_out) {
  if (!config_.batched_unlearn_kernel || rows.empty() || root_ == nullptr) {
    // Legacy path; also covers empty batches and building a first root,
    // which need no scratch.
    if (rows.empty()) return;
    BumpGeneration();
    DeletionStats local;
    if (root_ == nullptr) {
      // Canonical build order (see Build).
      std::vector<RowId> sorted = rows;
      std::sort(sorted.begin(), sorted.end());
      root_ =
          BuildNode(sorted, /*depth=*/0, RootPathKey(config_.seed, tree_id_));
      ++local.subtrees_retrained;
    } else {
      AddToNode(&root_, rows, /*depth=*/0,
                RootPathKey(config_.seed, tree_id_), &local);
    }
    if (stats_out != nullptr) stats_out->Add(local);
    return;
  }
  DeletionScratch scratch;
  AddRows(rows, stats_out, &scratch);
}

void DareTree::AddRows(const std::vector<RowId>& rows,
                       DeletionStats* stats_out, DeletionScratch* scratch) {
  if (rows.empty()) return;
  BumpGeneration();
  DeletionStats local;
  if (root_ == nullptr) {
    // Canonical build order (see Build).
    std::vector<RowId> sorted = rows;
    std::sort(sorted.begin(), sorted.end());
    root_ = BuildNode(sorted, /*depth=*/0, RootPathKey(config_.seed, tree_id_));
    ++local.subtrees_retrained;
  } else if (config_.batched_unlearn_kernel) {
    scratch->route.assign(rows.begin(), rows.end());
    AddToNodeKernel(&root_, scratch->route.data(),
                    scratch->route.data() + scratch->route.size(),
                    /*depth=*/0, RootPathKey(config_.seed, tree_id_), &local,
                    scratch);
  } else {
    AddToNode(&root_, rows, /*depth=*/0,
              RootPathKey(config_.seed, tree_id_), &local);
  }
  if (stats_out != nullptr) stats_out->Add(local);
}

void DareTree::AddToNode(std::shared_ptr<TreeNode>* slot,
                         const std::vector<RowId>& rows, int depth,
                         uint64_t path_key, DeletionStats* stats_out) {
  TreeNode* node = Mutable(slot, stats_out);
  ++stats_out->nodes_visited;

  if (node->is_leaf()) {
    // Unlike deletion, addition can turn a leaf into a split (count grows,
    // purity can break). Rebuilding from the leaf's rows plus the additions
    // recomputes the decision from scratch — cheap, the set is leaf-sized.
    // The rebuilt root is moved INTO the existing node so an exclusively
    // owned leaf keeps its address (the stream prediction cache resumes
    // descents from it).
    ++stats_out->leaves_updated;
    std::vector<RowId> merged = node->rows;
    merged.insert(merged.end(), rows.begin(), rows.end());
    // Canonical rebuild order (see DeleteFromNode).
    std::sort(merged.begin(), merged.end());
    stats_out->rows_retrained += static_cast<int64_t>(merged.size());
    std::shared_ptr<TreeNode> rebuilt = BuildNode(merged, depth, path_key);
    *node = std::move(*rebuilt);
    return;
  }

  ++stats_out->nodes_updated;
  for (RowId r : rows) node->stats.AddRow(*store_, r);
  node->count = node->stats.count;
  node->pos = node->stats.pos;

  const SplitDecision decision =
      DecideSplit(node->stats, *store_, depth, path_key, config_);
  SplitDecision current;
  current.is_leaf = false;
  current.attr = node->attr;
  current.threshold = node->threshold;
  current.is_random = node->is_random;

  if (!decision.SameSplit(current)) {
    ++stats_out->subtrees_retrained;
    std::vector<RowId> remaining;
    CollectLeafRows(node, &remaining);
    remaining.insert(remaining.end(), rows.begin(), rows.end());
    // Canonical rebuild order (see DeleteFromNode).
    std::sort(remaining.begin(), remaining.end());
    stats_out->rows_retrained += static_cast<int64_t>(remaining.size());
    std::shared_ptr<TreeNode> rebuilt = BuildNode(remaining, depth, path_key);
    *node = std::move(*rebuilt);
    return;
  }

  std::vector<RowId> left_rows;
  std::vector<RowId> right_rows;
  for (RowId r : rows) {
    (store_->code(r, node->attr) <= node->threshold ? left_rows : right_rows)
        .push_back(r);
  }
  if (!left_rows.empty()) {
    AddToNode(&node->left, left_rows, depth + 1, ChildPathKey(path_key, 0),
              stats_out);
  }
  if (!right_rows.empty()) {
    AddToNode(&node->right, right_rows, depth + 1, ChildPathKey(path_key, 1),
              stats_out);
  }
}

void DareTree::AddToNodeKernel(std::shared_ptr<TreeNode>* slot, RowId* begin,
                               RowId* end, int depth, uint64_t path_key,
                               DeletionStats* stats_out,
                               DeletionScratch* scratch) {
  TreeNode* node = Mutable(slot, stats_out);
  ++stats_out->nodes_visited;
  const int64_t n = end - begin;

  if (node->is_leaf()) {
    // Same rebuild-from-merged-rows step as the baseline, with the merge
    // buffer reused across leaves and batches. The canonical sort makes the
    // merged order — and hence the rebuilt subtree's leaf lists —
    // byte-identical to the baseline's.
    ++stats_out->leaves_updated;
    std::vector<RowId>& merged = scratch->remaining;
    merged.clear();
    merged.insert(merged.end(), node->rows.begin(), node->rows.end());
    merged.insert(merged.end(), begin, end);
    // Canonical rebuild order (see DeleteFromNode).
    std::sort(merged.begin(), merged.end());
    stats_out->rows_retrained += static_cast<int64_t>(merged.size());
    std::shared_ptr<TreeNode> rebuilt = BuildNodeKernel(
        merged.data(), merged.data() + merged.size(), depth, path_key,
        scratch);
    *node = std::move(*rebuilt);
    return;
  }

  // No fused update+partition here, unlike DeleteFromNodeKernel: add
  // retrains are leaf-sized and rare enough that the separate partition
  // after the flip check has never shown up in the bench.
  ++stats_out->nodes_updated;
  node->stats.AddRows(*store_, begin, n);
  node->count = node->stats.count;
  node->pos = node->stats.pos;

  const SplitDecision decision =
      DecideSplit(node->stats, *store_, depth, path_key, config_);
  SplitDecision current;
  current.is_leaf = false;
  current.attr = node->attr;
  current.threshold = node->threshold;
  current.is_random = node->is_random;

  if (!decision.SameSplit(current)) {
    ++stats_out->subtrees_retrained;
    std::vector<RowId>& remaining = scratch->remaining;
    remaining.clear();
    CollectLeafRows(node, &remaining);
    remaining.insert(remaining.end(), begin, end);
    // Canonical rebuild order (see DeleteFromNode).
    std::sort(remaining.begin(), remaining.end());
    stats_out->rows_retrained += static_cast<int64_t>(remaining.size());
    std::shared_ptr<TreeNode> rebuilt = BuildNodeKernel(
        remaining.data(), remaining.data() + remaining.size(), depth, path_key,
        scratch, &node->stats);
    *node = std::move(*rebuilt);
    return;
  }

  RowId* mid = PartitionBySplit(node, begin, end, scratch);
  if (mid != begin) {
    AddToNodeKernel(&node->left, begin, mid, depth + 1,
                    ChildPathKey(path_key, 0), stats_out, scratch);
  }
  if (mid != end) {
    AddToNodeKernel(&node->right, mid, end, depth + 1,
                    ChildPathKey(path_key, 1), stats_out, scratch);
  }
}

namespace {

std::shared_ptr<TreeNode> DeepCloneNode(const TreeNode* node) {
  auto out = std::make_shared<TreeNode>();
  out->count = node->count;
  out->pos = node->pos;
  out->attr = node->attr;
  out->threshold = node->threshold;
  out->is_random = node->is_random;
  out->stats = node->stats;
  out->rows = node->rows;
  if (node->lazy != nullptr) {
    out->lazy = std::make_unique<LazyTag>(*node->lazy);
  }
  if (!node->is_leaf()) {
    out->left = DeepCloneNode(node->left.get());
    out->right = DeepCloneNode(node->right.get());
  }
  return out;
}

bool NodesEqual(const TreeNode* a, const TreeNode* b) {
  if (a == b) return true;  // CoW-shared subtrees are identical by identity
  if (a->count != b->count || a->pos != b->pos) return false;
  if (a->is_leaf() != b->is_leaf()) return false;
  if (a->is_leaf()) {
    std::vector<RowId> ra = a->rows;
    std::vector<RowId> rb = b->rows;
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    return ra == rb;
  }
  if (a->attr != b->attr || a->threshold != b->threshold ||
      a->is_random != b->is_random) {
    return false;
  }
  if (!a->stats.Equals(b->stats)) return false;
  return NodesEqual(a->left.get(), b->left.get()) &&
         NodesEqual(a->right.get(), b->right.get());
}

// Recounts statistics from leaf membership; returns false on any mismatch.
bool ValidateNode(const TreeNode* node, const TrainingStore& store,
                  std::vector<RowId>* rows_out) {
  std::vector<RowId> rows;
  if (node->is_leaf()) {
    rows = node->rows;
  } else {
    std::vector<RowId> left_rows;
    std::vector<RowId> right_rows;
    if (!ValidateNode(node->left.get(), store, &left_rows)) return false;
    if (!ValidateNode(node->right.get(), store, &right_rows)) return false;
    for (RowId r : left_rows) {
      if (store.code(r, node->attr) > node->threshold) {
        std::fprintf(stderr, "row %d misrouted to left child\n", r);
        return false;
      }
    }
    for (RowId r : right_rows) {
      if (store.code(r, node->attr) <= node->threshold) {
        std::fprintf(stderr, "row %d misrouted to right child\n", r);
        return false;
      }
    }
    rows = left_rows;
    rows.insert(rows.end(), right_rows.begin(), right_rows.end());
    NodeStats expect;
    expect.ComputeFromRows(store, rows, node->stats.cand_attrs);
    if (!expect.Equals(node->stats)) {
      std::fprintf(stderr, "cached stats mismatch at internal node\n");
      return false;
    }
  }
  int64_t pos = 0;
  for (RowId r : rows) pos += store.label(r);
  if (node->count != static_cast<int64_t>(rows.size()) || node->pos != pos) {
    std::fprintf(stderr, "count/pos mismatch: have (%lld,%lld) want (%zu,%lld)\n",
                 static_cast<long long>(node->count),
                 static_cast<long long>(node->pos), rows.size(),
                 static_cast<long long>(pos));
    return false;
  }
  *rows_out = std::move(rows);
  return true;
}

int64_t CountNodes(const TreeNode* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf()) return 1;
  return 1 + CountNodes(node->left.get()) + CountNodes(node->right.get());
}

int64_t CountLeaves(const TreeNode* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf()) return 1;
  return CountLeaves(node->left.get()) + CountLeaves(node->right.get());
}

int Depth(const TreeNode* node) {
  if (node == nullptr || node->is_leaf()) return 0;
  return 1 + std::max(Depth(node->left.get()), Depth(node->right.get()));
}

int64_t NodeHeapBytes(const TreeNode* node) {
  if (node == nullptr) return 0;
  int64_t bytes = static_cast<int64_t>(sizeof(TreeNode));
  bytes += static_cast<int64_t>(node->rows.capacity() * sizeof(RowId));
  bytes += static_cast<int64_t>(node->stats.cand_attrs.capacity() *
                                sizeof(int));
  bytes += static_cast<int64_t>(node->stats.hist_offsets.capacity() *
                                sizeof(int32_t));
  bytes += static_cast<int64_t>(node->stats.hist.capacity() *
                                sizeof(int64_t));
  return bytes + NodeHeapBytes(node->left.get()) +
         NodeHeapBytes(node->right.get());
}

#ifndef NDEBUG
void CheckCowNode(const TreeNode* node,
                  std::unordered_set<const TreeNode*>* seen) {
  // Within one tree the node graph must be a proper tree: a node reachable
  // through two parents would be double-mutated by one DeleteRows pass.
  FUME_CHECK(seen->insert(node).second);
  FUME_CHECK((node->left == nullptr) == (node->right == nullptr));
  if (node->left != nullptr) {
    FUME_CHECK_GE(node->left.use_count(), 1);
    FUME_CHECK_GE(node->right.use_count(), 1);
    CheckCowNode(node->left.get(), seen);
    CheckCowNode(node->right.get(), seen);
  }
}
#endif

}  // namespace

DareTree DareTree::Clone() const {
  DareTree out;
  out.store_ = store_;
  out.config_ = config_;
  out.tree_id_ = tree_id_;
  out.root_ = root_;  // CoW: share the node graph, refcount keeps it alive
  // Same nodes, same stamp — but a private cache cell, so neither tree's
  // later mutations can evict the other's arena. The seeded snapshot (when
  // one exists) serves both trees until one of them mutates.
  out.generation_ = generation_;
  // The clone shares any tagged nodes and owes the same flush work; its
  // first flush (or delete) unshares them, deep-copying the tags, so the
  // two trees never alias tag state.
  out.lazy_rows_ = lazy_rows_;
  out.lazy_nodes_ = lazy_nodes_;
  out.arena_slot_ = std::make_shared<arena_internal::ArenaSlot>();
  if (arena_slot_ != nullptr) {
    out.arena_slot_->arena.store(arena_slot_->arena.load());
    out.arena_slot_->size_hint.store(
        arena_slot_->size_hint.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  return out;
}

DareTree DareTree::DeepClone() const {
  DareTree out;
  out.store_ = store_;
  out.config_ = config_;
  out.tree_id_ = tree_id_;
  if (root_ != nullptr) out.root_ = DeepCloneNode(root_.get());
  out.lazy_rows_ = lazy_rows_;
  out.lazy_nodes_ = lazy_nodes_;
  // Fresh node addresses: a fresh stamp keeps any shared arena (node_
  // points into the source graph) from ever serving this tree.
  out.generation_ = arena_internal::NextGeneration();
  out.arena_slot_ = std::make_shared<arena_internal::ArenaSlot>();
  return out;
}

bool DareTree::StructurallyEquals(const DareTree& other) const {
  if ((root_ == nullptr) != (other.root_ == nullptr)) return false;
  if (root_ == nullptr) return true;
  return NodesEqual(root_.get(), other.root_.get());
}

bool DareTree::ValidateStats() const {
  if (root_ == nullptr) return true;
  std::vector<RowId> rows;
  return ValidateNode(root_.get(), *store_, &rows);
}

void DareTree::DebugCheckCowConsistency() const {
#ifndef NDEBUG
  if (root_ == nullptr) return;
  std::unordered_set<const TreeNode*> seen;
  CheckCowNode(root_.get(), &seen);
#endif
}

DareTree DareTree::FromParts(std::shared_ptr<const TrainingStore> store,
                             const ForestConfig& config, int tree_id,
                             std::shared_ptr<TreeNode> root) {
  DareTree tree;
  tree.store_ = std::move(store);
  tree.config_ = config;
  tree.tree_id_ = tree_id;
  tree.root_ = std::move(root);
  tree.generation_ = arena_internal::NextGeneration();
  tree.arena_slot_ = std::make_shared<arena_internal::ArenaSlot>();
  return tree;
}

int64_t DareTree::num_nodes() const { return CountNodes(root_.get()); }
int64_t DareTree::num_leaves() const { return CountLeaves(root_.get()); }
int DareTree::depth() const { return Depth(root_.get()); }
int64_t DareTree::ApproxHeapBytes() const {
  return NodeHeapBytes(root_.get());
}

}  // namespace fume
