#include "knn/knn.h"

#include <algorithm>

#include "fairness/metrics.h"

namespace fume {

Result<KnnClassifier> KnnClassifier::Train(const Dataset& train,
                                           const KnnConfig& config) {
  if (!train.schema().AllCategorical()) {
    return Status::Invalid("KnnClassifier requires all-categorical data");
  }
  if (train.num_rows() == 0) {
    return Status::Invalid("cannot train on an empty dataset");
  }
  if (config.num_neighbors < 1) {
    return Status::Invalid("num_neighbors must be >= 1");
  }
  KnnClassifier model;
  model.store_ = TrainingStore::Make(train);
  model.config_ = config;
  model.alive_.assign(static_cast<size_t>(train.num_rows()), 1);
  model.alive_count_ = train.num_rows();
  return model;
}

double KnnClassifier::PredictProb(const Dataset& data, int64_t row) const {
  if (alive_count_ == 0) return 0.5;
  const int p = store_->num_attrs();
  const int k = std::min<int>(config_.num_neighbors,
                              static_cast<int>(alive_count_));
  // Bounded selection: keep the k best (distance, row id) pairs. Scanning
  // rows in ascending id order makes the tie-break "smaller id wins"
  // automatic with a strict comparison against the current worst.
  std::vector<std::pair<int, RowId>> best;  // max-heap by (distance, id)
  best.reserve(static_cast<size_t>(k) + 1);
  for (RowId r = 0; r < store_->num_rows(); ++r) {
    if (!alive_[static_cast<size_t>(r)]) continue;
    int dist = 0;
    for (int j = 0; j < p; ++j) {
      dist += store_->code(r, j) != data.Code(row, j) ? 1 : 0;
    }
    const std::pair<int, RowId> entry{dist, r};
    if (static_cast<int>(best.size()) < k) {
      best.push_back(entry);
      std::push_heap(best.begin(), best.end());
    } else if (entry < best.front()) {
      std::pop_heap(best.begin(), best.end());
      best.back() = entry;
      std::push_heap(best.begin(), best.end());
    }
  }
  int64_t positives = 0;
  for (const auto& [dist, r] : best) positives += store_->label(r);
  return static_cast<double>(positives) / static_cast<double>(best.size());
}

int KnnClassifier::Predict(const Dataset& data, int64_t row) const {
  return PredictProb(data, row) >= 0.5 ? 1 : 0;
}

std::vector<int> KnnClassifier::PredictAll(const Dataset& data) const {
  std::vector<int> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = Predict(data, r);
  }
  return out;
}

double KnnClassifier::Accuracy(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  const std::vector<int> preds = PredictAll(data);
  int64_t correct = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == data.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

Status KnnClassifier::DeleteRows(const std::vector<RowId>& rows) {
  for (RowId r : rows) {
    if (r < 0 || r >= store_->num_rows()) {
      return Status::IndexError("row id " + std::to_string(r) +
                                " out of range");
    }
    if (!alive_[static_cast<size_t>(r)]) {
      return Status::Invalid("row " + std::to_string(r) +
                             " already deleted (or duplicated in batch)");
    }
  }
  for (RowId r : rows) alive_[static_cast<size_t>(r)] = 0;
  alive_count_ -= static_cast<int64_t>(rows.size());
  return Status::OK();
}

KnnClassifier KnnClassifier::Clone() const { return *this; }

KnnUnlearnRemovalMethod::KnnUnlearnRemovalMethod(const KnnClassifier* model,
                                                 const Dataset* test,
                                                 GroupSpec group,
                                                 FairnessMetric metric)
    : model_(model), test_(test), group_(group), metric_(metric) {}

ModelEval EvaluateKnn(const KnnClassifier& model, const Dataset& test,
                      const GroupSpec& group, FairnessMetric metric) {
  const std::vector<int> preds = model.PredictAll(test);
  ModelEval eval;
  eval.fairness = ComputeFairness(test, preds, group, metric);
  int64_t correct = 0;
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test.Label(r)) ++correct;
  }
  eval.accuracy = test.num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.num_rows());
  return eval;
}

Result<ModelEval> KnnUnlearnRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  KnnClassifier what_if = model_->Clone();
  FUME_RETURN_NOT_OK(what_if.DeleteRows(rows));
  return EvaluateKnn(what_if, *test_, group_, metric_);
}

}  // namespace fume
