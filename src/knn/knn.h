// KnnClassifier: a second non-parametric model family with exact unlearning,
// demonstrating the paper's §5 claim that FUME extends beyond random forests
// by swapping the removal method. Deleting a training instance from a k-NN
// model is trivially exact — the instance simply stops being a neighbour —
// so the unlearned model IS the retrained model.

#ifndef FUME_KNN_KNN_H_
#define FUME_KNN_KNN_H_

#include <memory>
#include <vector>

#include "core/removal_method.h"
#include "data/dataset.h"
#include "fairness/confusion.h"
#include "forest/training_store.h"
#include "util/result.h"

namespace fume {

struct KnnConfig {
  /// Number of neighbours considered per prediction.
  int num_neighbors = 5;
};

/// \brief k-nearest-neighbour binary classifier over all-categorical data
/// with Hamming distance. Supports exact deletion (mask out the rows) and
/// cheap cloning (clones share the immutable training snapshot).
class KnnClassifier {
 public:
  KnnClassifier() = default;

  static Result<KnnClassifier> Train(const Dataset& train,
                                     const KnnConfig& config);

  /// P(label=1) = positive fraction among the k nearest alive training
  /// rows. Ties at the k-th distance break deterministically by row id.
  double PredictProb(const Dataset& data, int64_t row) const;
  int Predict(const Dataset& data, int64_t row) const;
  std::vector<int> PredictAll(const Dataset& data) const;
  double Accuracy(const Dataset& data) const;

  /// Exact unlearning: the rows stop participating in every future
  /// prediction, which is precisely what retraining on the reduced data
  /// yields. Duplicate or already-deleted ids are an error.
  Status DeleteRows(const std::vector<RowId>& rows);

  KnnClassifier Clone() const;

  int64_t num_alive_rows() const { return alive_count_; }

 private:
  std::shared_ptr<const TrainingStore> store_;
  KnnConfig config_;
  std::vector<uint8_t> alive_;
  int64_t alive_count_ = 0;
};

/// \brief RemovalMethod adapter so FUME can explain k-NN fairness violations
/// (plug into the generic ExplainWithRemoval overload).
class KnnUnlearnRemovalMethod : public RemovalMethod {
 public:
  /// Pointers must outlive this object.
  KnnUnlearnRemovalMethod(const KnnClassifier* model, const Dataset* test,
                          GroupSpec group, FairnessMetric metric);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  const char* name() const override { return "knn-unlearn"; }

 private:
  const KnnClassifier* model_;
  const Dataset* test_;
  GroupSpec group_;
  FairnessMetric metric_;
};

/// Evaluates a trained k-NN model on test data (fairness + accuracy).
ModelEval EvaluateKnn(const KnnClassifier& model, const Dataset& test,
                      const GroupSpec& group, FairnessMetric metric);

}  // namespace fume

#endif  // FUME_KNN_KNN_H_
