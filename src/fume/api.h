// Umbrella header: everything a typical FUME user needs with one include.
//
//   #include "fume/api.h"
//
// For finer-grained builds include the individual module headers instead.

#ifndef FUME_FUME_API_H_
#define FUME_FUME_API_H_

#include "core/baseline.h"          // DropUnprivUnfavor baseline
#include "core/fume.h"              // ExplainFairnessViolation / FumeConfig
#include "core/removal_method.h"    // RemovalMethod, Unlearn/Retrain impls
#include "core/report.h"            // PrintTopK / FormatReport
#include "core/slice_finder.h"      // SliceFinder-style comparator
#include "data/csv.h"               // ReadCsvFile / WriteCsvFile
#include "data/dataset.h"           // Dataset / Schema
#include "data/discretizer.h"       // quantile / equi-width binning
#include "data/split.h"             // SplitTrainTest
#include "fairness/importance.h"    // PermutationImportance
#include "fairness/intersectional.h"  // intersectional groups
#include "fairness/metrics.h"       // FairnessMetric / ComputeFairness
#include "forest/forest.h"          // DareForest
#include "forest/serialize.h"       // SaveForestToFile / LoadForestFromFile
#include "obs/metrics.h"            // MetricsRegistry / counters
#include "obs/trace.h"              // TraceSpan / StartTracing
#include "repair/what_if.h"         // WhatIfRemove / Relabel / Duplicate
#include "subset/predicate.h"       // Literal / Predicate
#include "util/result.h"            // Status / Result

#endif  // FUME_FUME_API_H_
