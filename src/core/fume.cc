#include "core/fume.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fume {

namespace {

// Global mirrors of the per-run FumeStats, so a whole process's pruning
// behaviour is visible via `fume_cli --metrics-out` and bench artifacts.
// All increments happen on the search's main thread.
struct SearchMetrics {
  obs::Counter* rule2_low = obs::GetCounter("fume.prune.rule2_support_low");
  obs::Counter* rule2_high = obs::GetCounter("fume.prune.rule2_support_high");
  obs::Counter* rule3 = obs::GetCounter("fume.prune.rule3_unexpanded");
  obs::Counter* rule4 = obs::GetCounter("fume.prune.rule4_parent");
  obs::Counter* rule5 = obs::GetCounter("fume.prune.rule5_nonpositive");
  obs::Counter* cache_hit = obs::GetCounter("fume.rowset_cache.hit");
  obs::Counter* cache_miss = obs::GetCounter("fume.rowset_cache.miss");
  obs::Counter* cache_insert = obs::GetCounter("fume.rowset_cache.insert");
  obs::Counter* runs = obs::GetCounter("fume.search.runs");
  obs::Counter* evaluations = obs::GetCounter("fume.search.evaluations");
  obs::Counter* possible = obs::GetCounter("fume.search.possible_subsets");
  obs::Counter* explored = obs::GetCounter("fume.search.explored_subsets");
  obs::Histogram* frontier = obs::GetHistogram("fume.search.frontier_size");

  static SearchMetrics& Get() {
    static SearchMetrics metrics;
    return metrics;
  }
};

// Hash of a sorted row-id vector, for the attribution memo table.
struct RowsKey {
  std::vector<int32_t> rows;
  bool operator==(const RowsKey& other) const { return rows == other.rows; }
};

struct RowsKeyHash {
  size_t operator()(const RowsKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int32_t r : k.rows) {
      h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(r)));
    }
    return static_cast<size_t>(h);
  }
};

Status ValidateConfig(const FumeConfig& config) {
  if (config.top_k < 1) return Status::Invalid("top_k must be >= 1");
  if (config.max_literals < 1) {
    return Status::Invalid("max_literals must be >= 1");
  }
  if (config.support_min < 0.0 || config.support_max > 1.0 ||
      config.support_min >= config.support_max) {
    return Status::Invalid("need 0 <= support_min < support_max <= 1");
  }
  return Status::OK();
}

}  // namespace

Result<FumeResult> ExplainWithRemoval(const ModelEval& original,
                                      const Dataset& train,
                                      const FumeConfig& config,
                                      RemovalMethod* removal) {
  FUME_RETURN_NOT_OK(ValidateConfig(config));
  if (!train.schema().AllCategorical()) {
    return Status::Invalid("training data must be all-categorical");
  }
  Stopwatch total_watch;
  SearchMetrics& metrics = SearchMetrics::Get();
  metrics.runs->Inc();
  obs::TraceSpan run_span("fume.explain", {{"rows", train.num_rows()}});

  FumeResult result;
  result.original_fairness = original.fairness;
  result.original_accuracy = original.accuracy;
  if (std::fabs(result.original_fairness) < config.min_original_bias) {
    return Status::Invalid(
        "model satisfies " +
        std::string(FairnessMetricName(config.metric)) +
        " on the test data (|F| = " +
        std::to_string(std::fabs(result.original_fairness)) +
        "); there is no violation to explain");
  }

  Lattice lattice(train, config.lattice);
  std::unordered_map<RowsKey, ModelEval, RowsKeyHash> memo;

  std::vector<LatticeNode> frontier = lattice.MakeLevel1();
  int64_t possible = lattice.NumPossibleLevel1();
  // Rule 1 pruning that happened while merging the frontier for the next
  // level, attributed to that level's stats row.
  int64_t pending_rule1 = 0;

  // One persistent pool serves every level of the search (a caller-supplied
  // pool additionally serves every search sharing it); per-level thread
  // spawning is gone.
  const int num_threads = std::max(1, config.num_threads);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = config.pool;
  if (pool == nullptr && num_threads > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(num_threads);
    pool = owned_pool.get();
  }
  const int num_workers = pool != nullptr ? pool->num_threads() : 1;

  for (int level = 1; level <= config.max_literals; ++level) {
    Stopwatch level_watch;
    obs::TraceSpan level_span(
        "fume.level",
        {{"level", level}, {"frontier", static_cast<int64_t>(frontier.size())}});
    LevelStats level_stats;
    level_stats.level = level;
    level_stats.possible = possible;
    level_stats.rule1_pruned = pending_rule1;
    metrics.possible->Inc(possible);
    metrics.frontier->Record(static_cast<int64_t>(frontier.size()));

    // ---- Phase 1: classify nodes against Rule 2 and collect the distinct
    // row sets that need an attribution evaluation.
    enum class NodeFate : uint8_t { kSkip, kExpandOnly, kEvaluate };
    std::vector<NodeFate> fates(frontier.size(), NodeFate::kSkip);
    std::vector<RowsKey> keys(frontier.size());
    struct EvalJob {
      RowsKey key;
      ModelEval eval;
      Status status;
    };
    std::vector<EvalJob> jobs;
    std::unordered_map<RowsKey, size_t, RowsKeyHash> job_index;
    std::vector<size_t> job_of_node(frontier.size(), SIZE_MAX);
    std::vector<uint8_t> created_job(frontier.size(), 0);
    for (size_t i = 0; i < frontier.size(); ++i) {
      LatticeNode& node = frontier[i];
      // Rule 2 (upper bound): too-large subsets are not reported and not
      // estimated, but stay expandable — their children shrink into range.
      if (config.rule2_support && node.support > config.support_max) {
        fates[i] = NodeFate::kExpandOnly;
        ++level_stats.rule2_expand_only;
        continue;
      }
      // Rule 2 (lower bound): support is anti-monotone along the lattice,
      // so a too-small subset's whole subtree is out of range.
      if (config.rule2_support && node.support < config.support_min) {
        ++level_stats.rule2_pruned_low;
        continue;
      }
      if (node.support_count == 0) continue;
      fates[i] = NodeFate::kEvaluate;
      keys[i].rows = node.rows.ToRows();
      if (config.cache_by_rowset && memo.count(keys[i]) > 0) continue;
      // Duplicate row sets within a level always share one job: the
      // RemovalMethod contract requires the evaluation to be a pure
      // function of the row set, so re-running it could only waste work
      // (cache_by_rowset additionally memoizes results across levels).
      auto [it, inserted] = job_index.emplace(keys[i], jobs.size());
      if (inserted) {
        jobs.push_back(EvalJob{keys[i], ModelEval{}, Status::OK()});
        created_job[i] = 1;
      }
      job_of_node[i] = it->second;
    }

    // ---- Phase 2: run the evaluations, optionally across threads. Each
    // job is independent (clone + delete + score), so the outcome does not
    // depend on scheduling.
    {
      obs::TraceSpan eval_span("fume.evaluate",
                               {{"level", level},
                                {"jobs", static_cast<int64_t>(jobs.size())},
                                {"threads", num_workers}});
      auto run_job = [&](int worker, EvalJob& job) {
        std::vector<RowId> rows(job.key.rows.begin(), job.key.rows.end());
        auto eval = removal->EvaluateWithoutOn(worker, rows);
        if (eval.ok()) {
          job.eval = *eval;
        } else {
          job.status = eval.status();
        }
      };
      removal->BeginParallel(num_workers);
      if (pool == nullptr || jobs.size() < 2) {
        for (EvalJob& job : jobs) run_job(0, job);
      } else {
        pool->ParallelFor(jobs.size(), [&](int worker, size_t i) {
          run_job(worker, jobs[i]);
        });
      }
      removal->EndParallel();
      metrics.evaluations->Inc(static_cast<int64_t>(jobs.size()));
      for (EvalJob& job : jobs) {
        FUME_RETURN_NOT_OK(job.status);
        ++result.stats.attribution_evaluations;
        if (config.cache_by_rowset) {
          memo.emplace(std::move(job.key), job.eval);
          ++result.stats.cache_inserts;
          metrics.cache_insert->Inc();
        }
      }
    }

    // ---- Phase 3: apply Rules 4/5 and assemble candidates, in frontier
    // order (deterministic regardless of thread count).
    std::vector<LatticeNode> expandable;
    for (size_t i = 0; i < frontier.size(); ++i) {
      LatticeNode& node = frontier[i];
      if (fates[i] == NodeFate::kSkip) continue;
      if (fates[i] == NodeFate::kExpandOnly) {
        expandable.push_back(std::move(node));
        continue;
      }
      ModelEval eval;
      if (config.cache_by_rowset) {
        auto it = memo.find(keys[i]);
        FUME_CHECK(it != memo.end());
        eval = it->second;
      } else {
        eval = jobs[job_of_node[i]].eval;
      }
      // A node that did not create its own job shared another node's
      // identical row set this level or (with the memo) reused a prior
      // level's entry; either way the evaluation was saved.
      if (!created_job[i]) {
        ++result.stats.cache_hits;
        metrics.cache_hit->Inc();
      } else {
        metrics.cache_miss->Inc();
      }
      ++level_stats.explored;

      node.attribution = -ComputePhi(result.original_fairness, eval.fairness);

      // Rule 5: only subsets whose removal reduces bias are worth keeping.
      bool selected = true;
      if (config.rule5_positive && !(node.attribution > 0.0)) {
        selected = false;
        ++level_stats.rule5_pruned;
      }
      // Rule 4: a merged subset weaker than its strongest estimated parent
      // is a dead end.
      if (selected && config.rule4_parent &&
          !std::isnan(node.parent_attribution) &&
          node.attribution < node.parent_attribution) {
        selected = false;
        ++level_stats.rule4_pruned;
      }
      if (!selected) continue;

      AttributableSubset subset;
      subset.predicate = node.predicate;
      subset.support = node.support;
      subset.num_rows = node.support_count;
      subset.new_fairness = eval.fairness;
      subset.new_accuracy = eval.accuracy;
      subset.attribution = node.attribution;
      subset.phi = -node.attribution;
      // Output is restricted to the support range even when Rule 2 pruning
      // is disabled for ablation.
      if (subset.support >= config.support_min &&
          subset.support <= config.support_max && subset.attribution > 0.0) {
        result.all_candidates.push_back(subset);
      }
      expandable.push_back(std::move(node));
    }

    level_stats.seconds = level_watch.ElapsedSeconds();
    metrics.explored->Inc(level_stats.explored);
    metrics.rule2_low->Inc(level_stats.rule2_pruned_low);
    metrics.rule2_high->Inc(level_stats.rule2_expand_only);
    metrics.rule4->Inc(level_stats.rule4_pruned);
    metrics.rule5->Inc(level_stats.rule5_pruned);
    result.stats.levels.push_back(level_stats);

    if (level == config.max_literals) {  // Rule 3
      result.stats.rule3_unexpanded = static_cast<int64_t>(expandable.size());
      metrics.rule3->Inc(result.stats.rule3_unexpanded);
      break;
    }
    if (expandable.size() < 2) break;  // nothing left to merge
    LatticeMergeStats merge_stats;
    frontier = lattice.MergeLevel(std::move(expandable), merge_stats);
    possible = merge_stats.pairs_considered;
    pending_rule1 =
        merge_stats.rule1_contradictions + merge_stats.degenerate_merges;
    if (frontier.empty()) break;
  }

  // Rank candidates: attribution descending, predicate order for ties.
  obs::TraceSpan rank_span(
      "fume.rank",
      {{"candidates", static_cast<int64_t>(result.all_candidates.size())}});
  std::sort(result.all_candidates.begin(), result.all_candidates.end(),
            [](const AttributableSubset& a, const AttributableSubset& b) {
              if (a.attribution != b.attribution) {
                return a.attribution > b.attribution;
              }
              return a.predicate < b.predicate;
            });
  if (config.max_row_overlap >= 1.0) {
    const size_t k = std::min<size_t>(static_cast<size_t>(config.top_k),
                                      result.all_candidates.size());
    result.top_k.assign(result.all_candidates.begin(),
                        result.all_candidates.begin() +
                            static_cast<std::ptrdiff_t>(k));
  } else {
    // Greedy diverse selection: walk candidates best-first, skipping any
    // whose matched rows overlap a picked subset beyond the threshold.
    std::vector<Bitmap> picked_rows;
    for (const AttributableSubset& candidate : result.all_candidates) {
      if (static_cast<int>(result.top_k.size()) >= config.top_k) break;
      Bitmap rows = lattice.index().Match(candidate.predicate);
      const int64_t size = rows.Count();
      bool too_close = false;
      for (const Bitmap& prev : picked_rows) {
        // Jaccard needs only counts — never materialize the intersection.
        const int64_t inter = Bitmap::IntersectCount(rows, prev);
        const int64_t uni = size + prev.Count() - inter;
        if (uni > 0 && static_cast<double>(inter) / static_cast<double>(uni) >
                           config.max_row_overlap) {
          too_close = true;
          break;
        }
      }
      if (too_close) continue;
      picked_rows.push_back(std::move(rows));
      result.top_k.push_back(candidate);
    }
  }
  result.stats.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

Result<FumeResult> ExplainWithRemoval(const DareForest& model,
                                      const Dataset& train,
                                      const Dataset& test,
                                      const FumeConfig& config,
                                      RemovalMethod* removal) {
  ModelEval original;
  original.fairness = ComputeFairness(model, test, config.group, config.metric);
  original.accuracy = model.Accuracy(test);
  return ExplainWithRemoval(original, train, config, removal);
}

Result<FumeResult> ExplainFairnessViolation(const DareForest& model,
                                            const Dataset& train,
                                            const Dataset& test,
                                            const FumeConfig& config) {
  UnlearnRemovalMethod removal(&model, &test, config.group, config.metric);
  return ExplainWithRemoval(model, train, test, config, &removal);
}

}  // namespace fume
