#include "core/fume.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <unordered_map>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace fume {

namespace {

// Hash of a sorted row-id vector, for the attribution memo table.
struct RowsKey {
  std::vector<int32_t> rows;
  bool operator==(const RowsKey& other) const { return rows == other.rows; }
};

struct RowsKeyHash {
  size_t operator()(const RowsKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int32_t r : k.rows) {
      h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(r)));
    }
    return static_cast<size_t>(h);
  }
};

Status ValidateConfig(const FumeConfig& config) {
  if (config.top_k < 1) return Status::Invalid("top_k must be >= 1");
  if (config.max_literals < 1) {
    return Status::Invalid("max_literals must be >= 1");
  }
  if (config.support_min < 0.0 || config.support_max > 1.0 ||
      config.support_min >= config.support_max) {
    return Status::Invalid("need 0 <= support_min < support_max <= 1");
  }
  return Status::OK();
}

}  // namespace

Result<FumeResult> ExplainWithRemoval(const ModelEval& original,
                                      const Dataset& train,
                                      const FumeConfig& config,
                                      RemovalMethod* removal) {
  FUME_RETURN_NOT_OK(ValidateConfig(config));
  if (!train.schema().AllCategorical()) {
    return Status::Invalid("training data must be all-categorical");
  }
  Stopwatch total_watch;

  FumeResult result;
  result.original_fairness = original.fairness;
  result.original_accuracy = original.accuracy;
  if (std::fabs(result.original_fairness) < config.min_original_bias) {
    return Status::Invalid(
        "model satisfies " +
        std::string(FairnessMetricName(config.metric)) +
        " on the test data (|F| = " +
        std::to_string(std::fabs(result.original_fairness)) +
        "); there is no violation to explain");
  }

  Lattice lattice(train, config.lattice);
  std::unordered_map<RowsKey, ModelEval, RowsKeyHash> memo;

  std::vector<LatticeNode> frontier = lattice.MakeLevel1();
  int64_t possible = lattice.NumPossibleLevel1();

  const int num_threads = std::max(1, config.num_threads);

  for (int level = 1; level <= config.max_literals; ++level) {
    Stopwatch level_watch;
    LevelStats level_stats;
    level_stats.level = level;
    level_stats.possible = possible;

    // ---- Phase 1: classify nodes against Rule 2 and collect the distinct
    // row sets that need an attribution evaluation.
    enum class NodeFate : uint8_t { kSkip, kExpandOnly, kEvaluate };
    std::vector<NodeFate> fates(frontier.size(), NodeFate::kSkip);
    std::vector<RowsKey> keys(frontier.size());
    struct EvalJob {
      RowsKey key;
      ModelEval eval;
      Status status;
    };
    std::vector<EvalJob> jobs;
    std::unordered_map<RowsKey, size_t, RowsKeyHash> job_index;
    std::vector<size_t> job_of_node(frontier.size(), SIZE_MAX);
    std::vector<uint8_t> created_job(frontier.size(), 0);
    for (size_t i = 0; i < frontier.size(); ++i) {
      LatticeNode& node = frontier[i];
      // Rule 2 (upper bound): too-large subsets are not reported and not
      // estimated, but stay expandable — their children shrink into range.
      if (config.rule2_support && node.support > config.support_max) {
        fates[i] = NodeFate::kExpandOnly;
        continue;
      }
      // Rule 2 (lower bound): support is anti-monotone along the lattice,
      // so a too-small subset's whole subtree is out of range.
      if (config.rule2_support && node.support < config.support_min) continue;
      if (node.rows.Count() == 0) continue;
      fates[i] = NodeFate::kEvaluate;
      keys[i].rows = node.rows.ToRows();
      if (config.cache_by_rowset && memo.count(keys[i]) > 0) continue;
      auto [it, inserted] = job_index.emplace(keys[i], jobs.size());
      if (inserted) {
        jobs.push_back(EvalJob{keys[i], ModelEval{}, Status::OK()});
        created_job[i] = 1;
      } else if (!config.cache_by_rowset) {
        // Without the cache, duplicates are evaluated independently.
        jobs.push_back(EvalJob{keys[i], ModelEval{}, Status::OK()});
        it->second = jobs.size() - 1;
        created_job[i] = 1;
      }
      job_of_node[i] = it->second;
    }

    // ---- Phase 2: run the evaluations, optionally across threads. Each
    // job is independent (clone + delete + score), so the outcome does not
    // depend on scheduling.
    auto run_job = [&](EvalJob& job) {
      std::vector<RowId> rows(job.key.rows.begin(), job.key.rows.end());
      auto eval = removal->EvaluateWithout(rows);
      if (eval.ok()) {
        job.eval = *eval;
      } else {
        job.status = eval.status();
      }
    };
    if (num_threads <= 1 || jobs.size() < 2) {
      for (EvalJob& job : jobs) run_job(job);
    } else {
      std::atomic<size_t> next{0};
      std::vector<std::thread> workers;
      const int spawn =
          std::min<int>(num_threads, static_cast<int>(jobs.size()));
      workers.reserve(static_cast<size_t>(spawn));
      for (int t = 0; t < spawn; ++t) {
        workers.emplace_back([&]() {
          while (true) {
            const size_t i = next.fetch_add(1);
            if (i >= jobs.size()) return;
            run_job(jobs[i]);
          }
        });
      }
      for (auto& worker : workers) worker.join();
    }
    for (EvalJob& job : jobs) {
      FUME_RETURN_NOT_OK(job.status);
      ++result.stats.attribution_evaluations;
      if (config.cache_by_rowset) memo.emplace(std::move(job.key), job.eval);
    }

    // ---- Phase 3: apply Rules 4/5 and assemble candidates, in frontier
    // order (deterministic regardless of thread count).
    std::vector<LatticeNode> expandable;
    for (size_t i = 0; i < frontier.size(); ++i) {
      LatticeNode& node = frontier[i];
      if (fates[i] == NodeFate::kSkip) continue;
      if (fates[i] == NodeFate::kExpandOnly) {
        expandable.push_back(std::move(node));
        continue;
      }
      ModelEval eval;
      if (config.cache_by_rowset) {
        auto it = memo.find(keys[i]);
        FUME_CHECK(it != memo.end());
        eval = it->second;
        // A node that did not create its own job reused a prior level's
        // memo entry or another node's identical row set.
        if (!created_job[i]) ++result.stats.cache_hits;
      } else {
        eval = jobs[job_of_node[i]].eval;
      }
      ++level_stats.explored;

      node.attribution = -ComputePhi(result.original_fairness, eval.fairness);

      // Rule 5: only subsets whose removal reduces bias are worth keeping.
      bool selected = !config.rule5_positive || node.attribution > 0.0;
      // Rule 4: a merged subset weaker than its strongest estimated parent
      // is a dead end.
      if (selected && config.rule4_parent &&
          !std::isnan(node.parent_attribution) &&
          node.attribution < node.parent_attribution) {
        selected = false;
      }
      if (!selected) continue;

      AttributableSubset subset;
      subset.predicate = node.predicate;
      subset.support = node.support;
      subset.num_rows = node.rows.Count();
      subset.new_fairness = eval.fairness;
      subset.new_accuracy = eval.accuracy;
      subset.attribution = node.attribution;
      subset.phi = -node.attribution;
      // Output is restricted to the support range even when Rule 2 pruning
      // is disabled for ablation.
      if (subset.support >= config.support_min &&
          subset.support <= config.support_max && subset.attribution > 0.0) {
        result.all_candidates.push_back(subset);
      }
      expandable.push_back(std::move(node));
    }

    level_stats.seconds = level_watch.ElapsedSeconds();
    result.stats.levels.push_back(level_stats);

    if (level == config.max_literals) break;  // Rule 3
    if (expandable.size() < 2) break;  // nothing left to merge
    int64_t pairs = 0;
    frontier = lattice.MergeLevel(std::move(expandable), &pairs);
    possible = pairs;
    if (frontier.empty()) break;
  }

  // Rank candidates: attribution descending, predicate order for ties.
  std::sort(result.all_candidates.begin(), result.all_candidates.end(),
            [](const AttributableSubset& a, const AttributableSubset& b) {
              if (a.attribution != b.attribution) {
                return a.attribution > b.attribution;
              }
              return a.predicate < b.predicate;
            });
  if (config.max_row_overlap >= 1.0) {
    const size_t k = std::min<size_t>(static_cast<size_t>(config.top_k),
                                      result.all_candidates.size());
    result.top_k.assign(result.all_candidates.begin(),
                        result.all_candidates.begin() +
                            static_cast<std::ptrdiff_t>(k));
  } else {
    // Greedy diverse selection: walk candidates best-first, skipping any
    // whose matched rows overlap a picked subset beyond the threshold.
    std::vector<Bitmap> picked_rows;
    for (const AttributableSubset& candidate : result.all_candidates) {
      if (static_cast<int>(result.top_k.size()) >= config.top_k) break;
      Bitmap rows = lattice.index().Match(candidate.predicate);
      const int64_t size = rows.Count();
      bool too_close = false;
      for (const Bitmap& prev : picked_rows) {
        const int64_t inter = Bitmap::Intersect(rows, prev).Count();
        const int64_t uni = size + prev.Count() - inter;
        if (uni > 0 && static_cast<double>(inter) / static_cast<double>(uni) >
                           config.max_row_overlap) {
          too_close = true;
          break;
        }
      }
      if (too_close) continue;
      picked_rows.push_back(std::move(rows));
      result.top_k.push_back(candidate);
    }
  }
  result.stats.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

Result<FumeResult> ExplainWithRemoval(const DareForest& model,
                                      const Dataset& train,
                                      const Dataset& test,
                                      const FumeConfig& config,
                                      RemovalMethod* removal) {
  ModelEval original;
  original.fairness = ComputeFairness(model, test, config.group, config.metric);
  original.accuracy = model.Accuracy(test);
  return ExplainWithRemoval(original, train, config, removal);
}

Result<FumeResult> ExplainFairnessViolation(const DareForest& model,
                                            const Dataset& train,
                                            const Dataset& test,
                                            const FumeConfig& config) {
  UnlearnRemovalMethod removal(&model, &test, config.group, config.metric);
  return ExplainWithRemoval(model, train, test, config, &removal);
}

}  // namespace fume
