#include "core/slice_finder.h"

#include <algorithm>

namespace fume {

Result<std::vector<Slice>> FindProblematicSlices(
    const DareForest& model, const Dataset& data,
    const SliceFinderConfig& config) {
  if (config.top_k < 1) return Status::Invalid("top_k must be >= 1");
  if (config.max_literals < 1) {
    return Status::Invalid("max_literals must be >= 1");
  }
  if (!data.schema().AllCategorical()) {
    return Status::Invalid("slice finding requires all-categorical data");
  }

  const std::vector<int> preds = model.PredictAll(data);
  std::vector<uint8_t> wrong(static_cast<size_t>(data.num_rows()));
  int64_t total_wrong = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    wrong[static_cast<size_t>(r)] =
        preds[static_cast<size_t>(r)] != data.Label(r) ? 1 : 0;
    total_wrong += wrong[static_cast<size_t>(r)];
  }
  const double overall_error =
      data.num_rows() == 0
          ? 0.0
          : static_cast<double>(total_wrong) /
                static_cast<double>(data.num_rows());

  Lattice lattice(data, config.lattice);
  std::vector<Slice> slices;
  std::vector<LatticeNode> frontier = lattice.MakeLevel1();
  for (int level = 1; level <= config.max_literals; ++level) {
    std::vector<LatticeNode> expandable;
    for (LatticeNode& node : frontier) {
      if (node.support > config.support_max) {
        expandable.push_back(std::move(node));
        continue;
      }
      if (node.support < config.support_min) continue;
      Slice slice;
      slice.predicate = node.predicate;
      slice.support = node.support;
      slice.num_rows = node.support_count;
      int64_t slice_wrong = 0;
      for (int32_t r : node.rows.ToRows()) {
        slice_wrong += wrong[static_cast<size_t>(r)];
      }
      slice.slice_error = slice.num_rows == 0
                              ? 0.0
                              : static_cast<double>(slice_wrong) /
                                    static_cast<double>(slice.num_rows);
      slice.overall_error = overall_error;
      slice.effect_size = slice.slice_error - overall_error;
      slices.push_back(slice);
      expandable.push_back(std::move(node));
    }
    if (level == config.max_literals || expandable.size() < 2) break;
    frontier = lattice.MergeLevel(std::move(expandable), nullptr);
    if (frontier.empty()) break;
  }

  std::sort(slices.begin(), slices.end(), [](const Slice& a, const Slice& b) {
    if (a.effect_size != b.effect_size) return a.effect_size > b.effect_size;
    return a.predicate < b.predicate;
  });
  if (static_cast<int>(slices.size()) > config.top_k) {
    slices.resize(static_cast<size_t>(config.top_k));
  }
  return slices;
}

}  // namespace fume
