// FUME (Algorithm 1): top-k predicate-based training-data subsets
// attributable to a group-fairness violation, found by expanding the
// apriori lattice under pruning Rules 1-5 and estimating attribution via
// machine unlearning.

#ifndef FUME_CORE_FUME_H_
#define FUME_CORE_FUME_H_

#include <vector>

#include "core/attribution.h"
#include "core/removal_method.h"
#include "fairness/metrics.h"
#include "forest/forest.h"
#include "subset/lattice.h"
#include "util/result.h"

namespace fume {

namespace util {
class ThreadPool;
}  // namespace util

/// Hyperparameters of the search (paper §5 and §6.1).
struct FumeConfig {
  /// Number of subsets to report (paper default 5).
  int top_k = 5;
  /// Rule 2 support range [tau_min, tau_max] as fractions of |D|.
  double support_min = 0.05;
  double support_max = 0.15;
  /// Rule 3: maximum literals per subset (eta; paper reports 2-literal
  /// subsets).
  int max_literals = 2;
  FairnessMetric metric = FairnessMetric::kStatisticalParity;
  GroupSpec group;
  LatticeOptions lattice;

  /// Pruning-rule toggles (all on for the paper's algorithm; the ablation
  /// bench switches them off individually).
  bool rule2_support = true;
  bool rule4_parent = true;
  bool rule5_positive = true;

  /// A |F(h)| below this is treated as "no violation" and refused.
  double min_original_bias = 1e-9;

  /// Memoize attribution evaluations by matched row set (distinct predicates
  /// selecting identical rows share one unlearning pass).
  bool cache_by_rowset = true;

  /// Worker threads for attribution evaluations within a level (1 =
  /// sequential). Results are deterministic regardless of thread count.
  /// With > 1, the RemovalMethod's EvaluateWithout must be thread-safe
  /// (both built-in methods are).
  int num_threads = 1;

  /// Optional shared evaluation pool. When set, its workers run the level
  /// evaluations and `num_threads` is ignored; when null, the search
  /// creates its own pool once (if num_threads > 1) and reuses it across
  /// levels. Long-lived callers (stream engine, bench harness) share one
  /// pool across many searches to pay thread start-up exactly once.
  util::ThreadPool* pool = nullptr;

  /// Maximum Jaccard overlap (|A intersect B| / |A union B|) allowed between
  /// the row sets of any two reported top-k subsets. 1.0 disables the
  /// filter (the paper's default behaviour); lower values force the top-k
  /// to cover distinct cohorts, e.g. 0.5 drops a subset sharing more than
  /// half its rows with a better-ranked one. all_candidates is unaffected.
  double max_row_overlap = 1.0;
};

/// Per-level exploration counters (paper Table 9), with the pruning work
/// attributed to the individual rule that did it.
struct LevelStats {
  int level = 0;
  /// Syntactic candidates: literal count at level 1, apriori join pairs at
  /// deeper levels.
  int64_t possible = 0;
  /// Nodes whose attribution was actually estimated.
  int64_t explored = 0;
  double seconds = 0.0;

  /// Rule 1: join pairs dropped as contradictory/degenerate while forming
  /// this level's candidates (always 0 at level 1 — no join happened).
  int64_t rule1_pruned = 0;
  /// Rule 2 lower bound: support < tau_min, whole subtree abandoned.
  int64_t rule2_pruned_low = 0;
  /// Rule 2 upper bound: support > tau_max, kept expandable but never
  /// estimated.
  int64_t rule2_expand_only = 0;
  /// Rule 4: estimated but weaker than the strongest estimated parent.
  int64_t rule4_pruned = 0;
  /// Rule 5: estimated but attribution not positive.
  int64_t rule5_pruned = 0;

  double pruned_percent() const {
    if (possible == 0) return 0.0;
    return 100.0 * (1.0 - static_cast<double>(explored) /
                              static_cast<double>(possible));
  }
};

struct FumeStats {
  std::vector<LevelStats> levels;
  /// Removal-method invocations (cache hits excluded).
  int64_t attribution_evaluations = 0;
  /// Evaluations avoided because an identical row set was already scored
  /// (prior level or duplicate predicate within the level).
  int64_t cache_hits = 0;
  /// Distinct row sets entered into the memo table.
  int64_t cache_inserts = 0;
  /// Rule 3: expandable nodes left unexpanded at the literal-count cap.
  int64_t rule3_unexpanded = 0;
  double total_seconds = 0.0;
};

struct FumeResult {
  /// Signed F(h, D_test) of the original model.
  double original_fairness = 0.0;
  double original_accuracy = 0.0;
  /// Top-k attributable subsets, sorted by attribution descending (ties by
  /// predicate order for determinism). All have attribution > 0 and support
  /// within [support_min, support_max].
  std::vector<AttributableSubset> top_k;
  /// Every evaluated subset with positive attribution in the support range
  /// (top_k is its prefix) — used by the quality analysis of Figure 4.
  std::vector<AttributableSubset> all_candidates;
  FumeStats stats;
};

/// Runs Algorithm 1 model-agnostically: `original` is the evaluation of the
/// model being debugged (its fairness defines the violation), `train` the
/// all-categorical data it was trained on, and `removal` any RemovalMethod
/// over that model (paper §5: any parametric or non-parametric model works
/// by swapping EstimateAttribution's removal mechanism).
Result<FumeResult> ExplainWithRemoval(const ModelEval& original,
                                      const Dataset& train,
                                      const FumeConfig& config,
                                      RemovalMethod* removal);

/// DaRE-forest convenience: evaluates `model` on `test` and runs the
/// algorithm with the given removal method.
Result<FumeResult> ExplainWithRemoval(const DareForest& model,
                                      const Dataset& train,
                                      const Dataset& test,
                                      const FumeConfig& config,
                                      RemovalMethod* removal);

/// The standard entry point: removal = DaRE machine unlearning on `model`.
Result<FumeResult> ExplainFairnessViolation(const DareForest& model,
                                            const Dataset& train,
                                            const Dataset& test,
                                            const FumeConfig& config);

}  // namespace fume

#endif  // FUME_CORE_FUME_H_
