#include "core/sharded_removal.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

ShardedRemovalMethod::ShardedRemovalMethod(const ShardedForest* model,
                                           const Dataset* test,
                                           GroupSpec group,
                                           FairnessMetric metric)
    : ShardedRemovalMethod(model, test, group, metric, Options{}) {}

ShardedRemovalMethod::ShardedRemovalMethod(const ShardedForest* model,
                                           const Dataset* test,
                                           GroupSpec group,
                                           FairnessMetric metric,
                                           Options options)
    : ShardedRemovalMethod(model, test, group, metric, options, nullptr) {}

ShardedRemovalMethod::ShardedRemovalMethod(
    const ShardedForest* model, const Dataset* test, GroupSpec group,
    FairnessMetric metric, Options options,
    const ShardedPredictionCache* base_cache)
    : model_(model),
      test_(test),
      group_(group),
      metric_(metric),
      options_(options),
      external_cache_(base_cache) {}

ShardedRemovalMethod::Worker& ShardedRemovalMethod::WorkerSlot(int worker) {
  FUME_CHECK_GE(worker, 0);
  if (!in_parallel_ && static_cast<size_t>(worker) >= workers_.size()) {
    // Non-bracketed use is serialized by serial_mutex_, so on-demand growth
    // cannot race; bracketed slots are pre-sized by BeginParallel.
    workers_.resize(static_cast<size_t>(worker) + 1);
  }
  FUME_CHECK(static_cast<size_t>(worker) < workers_.size());
  auto& slot = workers_[static_cast<size_t>(worker)];
  if (slot == nullptr) slot = std::make_unique<Worker>();
  return *slot;
}

const ShardedPredictionCache& ShardedRemovalMethod::BaseCache() {
  if (external_cache_ != nullptr) return *external_cache_;
  std::call_once(base_cache_once_,
                 [this] { base_cache_.Rebuild(*model_, *test_); });
  return base_cache_;
}

void ShardedRemovalMethod::BeginParallel(int num_workers) {
  FUME_CHECK_GE(num_workers, 1);
  FUME_CHECK(!in_parallel_);
  if (workers_.size() < static_cast<size_t>(num_workers)) {
    workers_.resize(static_cast<size_t>(num_workers));
  }
  for (auto& slot : workers_) {
    if (slot == nullptr) slot = std::make_unique<Worker>();
  }
  BaseCache();  // seed before threads fan out
  in_parallel_ = true;
}

void ShardedRemovalMethod::EndParallel() {
  FUME_CHECK(in_parallel_);
  in_parallel_ = false;
  for (auto& slot : workers_) {
    if (slot == nullptr) continue;
    deletion_stats_.Add(slot->stats);
    slot->stats = DeletionStats{};
  }
}

Result<ModelEval> ShardedRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  return EvaluateWithoutOn(0, rows);
}

Result<ModelEval> ShardedRemovalMethod::EvaluateWithoutOn(
    int worker, const std::vector<RowId>& rows) {
  if (!in_parallel_) {
    std::lock_guard<std::mutex> lock(serial_mutex_);
    return EvaluateOnSlot(worker, rows);
  }
  return EvaluateOnSlot(worker, rows);
}

Result<ModelEval> ShardedRemovalMethod::EvaluateOnSlot(
    int worker, const std::vector<RowId>& rows) {
  static obs::Counter* evals = obs::GetCounter("removal.sharded.evaluations");
  static obs::Histogram* rows_hist =
      obs::GetHistogram("removal.sharded.rows_per_evaluation");
  static obs::Counter* shards_changed =
      obs::GetCounter("removal.sharded.shards_changed");
  static obs::Counter* rows_rescored =
      obs::GetCounter("removal.sharded.rows_rescored");
  evals->Inc();
  rows_hist->Record(static_cast<int64_t>(rows.size()));
  obs::TraceSpan span("removal.sharded.evaluate",
                      {{"rows", static_cast<int64_t>(rows.size())}});
  Worker& w = WorkerSlot(worker);
  ShardedForest what_if = model_->Clone();
  if (what_if.num_shards() > 0 &&
      what_if.shard(0).config().lazy_unlearn) {
    // Like the monolithic method: a what-if delete is scored immediately,
    // so deferral would only add tag bookkeeping on top of the same work.
    what_if.SetLazyUnlearn(false);
  }
  // Shard-local unlearning runs serially here: FUME's parallelism is
  // across evaluations (one worker per lattice job, this pool is not
  // reentrant), and a what-if batch rarely crosses many shards anyway.
  FUME_RETURN_NOT_OK(what_if.DeleteRows(rows, /*per_shard_tree=*/nullptr,
                                        /*pool=*/nullptr,
                                        &w.unlearn_scratch));
  // The clone's counters started at zero, so this sum is exactly the work
  // of this evaluation, merged in shard order.
  w.stats.Add(what_if.deletion_stats());

  const bool arena_rescore =
      options_.arena &&
      rows.size() >= UnlearnRemovalMethod::kArenaFullRescoreMinBatch;
  BaseCache().ScoreWhatIf(*model_, what_if, *test_, &w.scratch,
                          arena_rescore);
  shards_changed->Inc(w.scratch.shards_changed);
  rows_rescored->Inc(w.scratch.rows_rescored);

  ModelEval eval;
  const std::vector<int>& preds = w.scratch.preds;
  eval.fairness = ComputeFairness(*test_, preds, group_, metric_);
  int64_t correct = 0;
  for (int64_t r = 0; r < test_->num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test_->Label(r)) ++correct;
  }
  eval.accuracy = test_->num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test_->num_rows());
  if (!in_parallel_) {
    deletion_stats_.Add(w.stats);
    w.stats = DeletionStats{};
  }
  return eval;
}

}  // namespace fume
