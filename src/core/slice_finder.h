// SliceFinder-style comparator (Polyzotis et al., ICDE'19 — discussed in
// the paper's related work): finds predicate slices where the model's
// ACCURACY is worst, ranked by the error-rate gap against the rest of the
// data. The paper argues such accuracy-based slicing only indirectly
// relates to fairness attribution; the bench harness quantifies that by
// measuring the parity reduction of SliceFinder's slices next to FUME's.

#ifndef FUME_CORE_SLICE_FINDER_H_
#define FUME_CORE_SLICE_FINDER_H_

#include <vector>

#include "forest/forest.h"
#include "subset/lattice.h"
#include "util/result.h"

namespace fume {

/// One problematic slice.
struct Slice {
  Predicate predicate;
  double support = 0.0;
  int64_t num_rows = 0;
  /// Model error rate inside the slice.
  double slice_error = 0.0;
  /// Model error rate on the full evaluation data.
  double overall_error = 0.0;
  /// slice_error - overall_error; the ranking key (descending).
  double effect_size = 0.0;
};

struct SliceFinderConfig {
  int top_k = 5;
  double support_min = 0.05;
  double support_max = 0.15;
  int max_literals = 2;
  LatticeOptions lattice;
};

/// Enumerates the same lattice FUME searches (levels 1..max_literals,
/// support-filtered) and returns the top-k slices by error-rate gap of
/// `model`'s predictions over `data`.
Result<std::vector<Slice>> FindProblematicSlices(
    const DareForest& model, const Dataset& data,
    const SliceFinderConfig& config);

}  // namespace fume

#endif  // FUME_CORE_SLICE_FINDER_H_
