// RemovalMethod: the pluggable R of Eq. (2) — evaluates the model as if it
// had been trained without a given set of training rows. FUME uses the DaRE
// unlearning implementation; the scratch-retraining implementation provides
// ground truth for the RQ1 fidelity experiment (Figure 3) and a reference
// for tests.

#ifndef FUME_CORE_REMOVAL_METHOD_H_
#define FUME_CORE_REMOVAL_METHOD_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "fairness/metrics.h"
#include "forest/forest.h"
#include "util/result.h"

namespace fume {

/// Evaluation of a counterfactual model ("trained without T") on test data.
struct ModelEval {
  /// Signed fairness F(h_T, D_test).
  double fairness = 0.0;
  double accuracy = 0.0;
};

/// \brief Interface: evaluate fairness/accuracy of the model trained without
/// the given training rows.
///
/// Implementations used with FumeConfig::num_threads > 1 must make
/// EvaluateWithout safe to call concurrently (both built-in methods are).
class RemovalMethod {
 public:
  virtual ~RemovalMethod() = default;
  virtual Result<ModelEval> EvaluateWithout(
      const std::vector<RowId>& rows) = 0;
  virtual const char* name() const = 0;
};

/// \brief Machine unlearning removal: clones the trained DaRE forest and
/// exactly deletes the rows — no retraining pass over the data.
class UnlearnRemovalMethod : public RemovalMethod {
 public:
  /// Pointers must outlive this object.
  UnlearnRemovalMethod(const DareForest* model, const Dataset* test,
                       GroupSpec group, FairnessMetric metric);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  const char* name() const override { return "dare-unlearn"; }

  /// Unlearning work counters accumulated across evaluations. Do not call
  /// while evaluations are in flight on other threads.
  const DeletionStats& deletion_stats() const { return deletion_stats_; }

 private:
  const DareForest* model_;
  const Dataset* test_;
  GroupSpec group_;
  FairnessMetric metric_;
  std::mutex stats_mutex_;
  DeletionStats deletion_stats_;
};

/// \brief Naive removal: drops the rows from the training set and retrains a
/// forest from scratch.
class RetrainRemovalMethod : public RemovalMethod {
 public:
  /// `config.seed` controls the retrained forest's randomness: pass the
  /// original seed to reproduce the unlearned model exactly (tests), or a
  /// different seed to model a fresh retrain (the paper's Figure 3 setting).
  RetrainRemovalMethod(const Dataset* train, const Dataset* test,
                       ForestConfig config, GroupSpec group,
                       FairnessMetric metric);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  const char* name() const override { return "scratch-retrain"; }

 private:
  const Dataset* train_;
  const Dataset* test_;
  ForestConfig config_;
  GroupSpec group_;
  FairnessMetric metric_;
};

}  // namespace fume

#endif  // FUME_CORE_REMOVAL_METHOD_H_
