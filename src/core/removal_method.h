// RemovalMethod: the pluggable R of Eq. (2) — evaluates the model as if it
// had been trained without a given set of training rows. FUME uses the DaRE
// unlearning implementation; the scratch-retraining implementation provides
// ground truth for the RQ1 fidelity experiment (Figure 3) and a reference
// for tests.

#ifndef FUME_CORE_REMOVAL_METHOD_H_
#define FUME_CORE_REMOVAL_METHOD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fairness/metrics.h"
#include "forest/forest.h"
#include "forest/prediction_cache.h"
#include "util/result.h"

namespace fume {

/// Evaluation of a counterfactual model ("trained without T") on test data.
struct ModelEval {
  /// Signed fairness F(h_T, D_test).
  double fairness = 0.0;
  double accuracy = 0.0;
};

/// \brief Interface: evaluate fairness/accuracy of the model trained without
/// the given training rows.
///
/// Implementations used with FumeConfig::num_threads > 1 must make
/// EvaluateWithout / EvaluateWithoutOn safe to call concurrently (both
/// built-in methods are).
class RemovalMethod {
 public:
  virtual ~RemovalMethod() = default;

  /// Must be a deterministic pure function of the row set (for fixed
  /// construction state): FUME relies on this to evaluate each distinct
  /// row set at most once per lattice level — duplicates within a level
  /// share a single evaluation even with FumeConfig::cache_by_rowset off,
  /// and the rowset cache additionally memoizes results across levels. A
  /// stochastic implementation would make those reuses observable.
  virtual Result<ModelEval> EvaluateWithout(
      const std::vector<RowId>& rows) = 0;

  /// Worker-aware variant used by the parallel search: `worker` names the
  /// per-thread scratch slot reserved by BeginParallel, in
  /// [0, num_workers). The search guarantees at most one in-flight call per
  /// worker id, so implementations may keep lock-free per-worker state.
  /// Defaults to plain EvaluateWithout.
  virtual Result<ModelEval> EvaluateWithoutOn(int worker,
                                              const std::vector<RowId>& rows) {
    (void)worker;
    return EvaluateWithout(rows);
  }

  /// Brackets a batch of concurrent EvaluateWithoutOn calls. BeginParallel
  /// sizes per-worker state for ids [0, num_workers); EndParallel (called
  /// with no evaluation in flight) merges it back. Defaults are no-ops.
  virtual void BeginParallel(int num_workers) { (void)num_workers; }
  virtual void EndParallel() {}

  virtual const char* name() const = 0;
};

/// \brief Machine unlearning removal: clones the trained DaRE forest and
/// exactly deletes the rows — no retraining pass over the data.
///
/// By default the clone is copy-on-write and the test set is rescored
/// delta-aware: only nodes on mutated paths are copied, and only test rows
/// whose descent crosses a mutated region are re-walked (the base model's
/// per-tree predictions are cached once, lazily, at the first evaluation).
/// Results are byte-identical to the deep-copy + full-PredictAll reference
/// path, which Options::cow_delta = false restores for tests and benches.
class UnlearnRemovalMethod : public RemovalMethod {
 public:
  struct Options {
    /// Use CoW clones + delta-aware rescoring (false = deep copy + full
    /// prediction pass, the pre-optimization reference behaviour).
    bool cow_delta = true;
    /// With cow_delta: rescore the trees a deletion batch of at least
    /// kArenaFullRescoreMinBatch rows changed through their compiled flat
    /// arenas (one full streaming pass per changed tree) instead of the
    /// pointer diff-walk — big batches unshare most paths, so the
    /// diff-walk re-walks nearly every row through pointers anyway.
    /// Smaller batches keep the diff-walk. Byte-identical results; false
    /// pins the diff-walk for every batch size (the cow-delta reference
    /// strategy in bench_eval_throughput).
    bool arena = true;
  };

  /// Deletion-batch size at which Options::arena switches the what-if
  /// rescore from the pointer diff-walk to full arena passes. Sized off
  /// bench_eval_throughput: at 4 doomed rows the diff-walk still rescores
  /// a small fraction of the test set; by 64 it touches most of it.
  static constexpr size_t kArenaFullRescoreMinBatch = 16;

  /// Pointers must outlive this object. The model must not be mutated
  /// while evaluations run (the base prediction cache is seeded from it).
  UnlearnRemovalMethod(const DareForest* model, const Dataset* test,
                       GroupSpec group, FairnessMetric metric);
  UnlearnRemovalMethod(const DareForest* model, const Dataset* test,
                       GroupSpec group, FairnessMetric metric,
                       Options options);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  Result<ModelEval> EvaluateWithoutOn(
      int worker, const std::vector<RowId>& rows) override;
  void BeginParallel(int num_workers) override;
  void EndParallel() override;
  const char* name() const override { return "dare-unlearn"; }

  /// Unlearning work counters accumulated across evaluations. Outside a
  /// BeginParallel/EndParallel bracket this is up to date after every
  /// evaluation; inside one, per-worker counters are merged at EndParallel
  /// (do not call while evaluations are in flight).
  const DeletionStats& deletion_stats() const { return deletion_stats_; }

 private:
  /// Per-worker state: contention-free deletion-stat accumulation plus
  /// reusable rescoring and unlearning-kernel scratch. unique_ptr keeps
  /// slots cache-isolated.
  struct Worker {
    DeletionStats stats;
    TestPredictionCache::WhatIfScratch scratch;
    /// Reused by every what-if DeleteRows this worker performs, so
    /// steady-state evaluations run the deletion kernel allocation-free.
    DeletionScratch unlearn_scratch;
  };

  Worker& WorkerSlot(int worker);
  const TestPredictionCache& BaseCache();
  Result<ModelEval> EvaluateOnSlot(int worker, const std::vector<RowId>& rows);

  const DareForest* model_;
  const Dataset* test_;
  GroupSpec group_;
  FairnessMetric metric_;
  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool in_parallel_ = false;
  /// Serializes evaluations outside a BeginParallel bracket (they all share
  /// slot 0 and the global deletion_stats_), keeping the RemovalMethod
  /// concurrency contract without taxing the bracketed per-worker path.
  std::mutex serial_mutex_;
  std::once_flag base_cache_once_;
  TestPredictionCache base_cache_;
  DeletionStats deletion_stats_;
};

/// \brief Naive removal: drops the rows from the training set and retrains a
/// forest from scratch.
class RetrainRemovalMethod : public RemovalMethod {
 public:
  /// `config.seed` controls the retrained forest's randomness: pass the
  /// original seed to reproduce the unlearned model exactly (tests), or a
  /// different seed to model a fresh retrain (the paper's Figure 3 setting).
  RetrainRemovalMethod(const Dataset* train, const Dataset* test,
                       ForestConfig config, GroupSpec group,
                       FairnessMetric metric);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  const char* name() const override { return "scratch-retrain"; }

 private:
  const Dataset* train_;
  const Dataset* test_;
  ForestConfig config_;
  GroupSpec group_;
  FairnessMetric metric_;
};

}  // namespace fume

#endif  // FUME_CORE_REMOVAL_METHOD_H_
