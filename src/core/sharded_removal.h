// RemovalMethod over a SISA-style ShardedForest: a leave-out evaluation
// clones the ensemble copy-on-write, exactly unlearns each row from its
// owning shard, and rescores through the per-shard prediction cache —
// shards untouched by the row set contribute their cached vote for free.
// FUME, the stream engine and fume_serve plug it in wherever they would
// use UnlearnRemovalMethod; the top-k it produces differs from the
// monolithic forest's only through the ensemble's vote (the fidelity
// trade-off measured by bench_shard), never through scheduling.

#ifndef FUME_CORE_SHARDED_REMOVAL_H_
#define FUME_CORE_SHARDED_REMOVAL_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/removal_method.h"
#include "forest/sharded_forest.h"

namespace fume {

class ShardedRemovalMethod : public RemovalMethod {
 public:
  struct Options {
    /// See UnlearnRemovalMethod::Options::arena — same batch-size cutover
    /// (kArenaFullRescoreMinBatch), applied per changed shard.
    bool arena = true;
  };

  /// Pointers must outlive this object; the model must not be mutated
  /// while evaluations run. The base prediction cache is built lazily at
  /// the first evaluation.
  ShardedRemovalMethod(const ShardedForest* model, const Dataset* test,
                       GroupSpec group, FairnessMetric metric);
  ShardedRemovalMethod(const ShardedForest* model, const Dataset* test,
                       GroupSpec group, FairnessMetric metric,
                       Options options);

  /// As above, but rescoring through `base_cache` (e.g. the stream
  /// engine's warm per-shard cache) instead of building one internally.
  /// `base_cache` must have been rebuilt/updated against `model` and must
  /// stay valid and unmutated for this object's lifetime.
  ShardedRemovalMethod(const ShardedForest* model, const Dataset* test,
                       GroupSpec group, FairnessMetric metric,
                       Options options,
                       const ShardedPredictionCache* base_cache);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  Result<ModelEval> EvaluateWithoutOn(
      int worker, const std::vector<RowId>& rows) override;
  void BeginParallel(int num_workers) override;
  void EndParallel() override;
  const char* name() const override { return "dare-unlearn-sharded"; }

  /// Shard-order-merged unlearning work across evaluations (same contract
  /// as UnlearnRemovalMethod::deletion_stats).
  const DeletionStats& deletion_stats() const { return deletion_stats_; }

 private:
  struct Worker {
    DeletionStats stats;
    ShardedPredictionCache::WhatIfScratch scratch;
    /// Shard-affine deletion scratches (entry s always serves shard s).
    std::vector<DeletionScratch> unlearn_scratch;
  };

  Worker& WorkerSlot(int worker);
  const ShardedPredictionCache& BaseCache();
  Result<ModelEval> EvaluateOnSlot(int worker, const std::vector<RowId>& rows);

  const ShardedForest* model_;
  const Dataset* test_;
  GroupSpec group_;
  FairnessMetric metric_;
  Options options_;
  const ShardedPredictionCache* external_cache_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool in_parallel_ = false;
  std::mutex serial_mutex_;
  std::once_flag base_cache_once_;
  ShardedPredictionCache base_cache_;
  DeletionStats deletion_stats_;
};

}  // namespace fume

#endif  // FUME_CORE_SHARDED_REMOVAL_H_
