#include "core/report.h"

#include <sstream>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace fume {

void PrintTopK(const FumeResult& result, const Schema& schema,
               const std::string& index_prefix, std::ostream& os) {
  TablePrinter table({"Index", "Patterns", "Support", "Parity Reduction"});
  int i = 1;
  for (const AttributableSubset& s : result.top_k) {
    table.AddRow({index_prefix + std::to_string(i++),
                  s.predicate.ToString(schema), FormatPercent(s.support),
                  FormatPercent(s.attribution)});
  }
  if (result.top_k.empty()) {
    os << "(no attributable subsets found in the requested support range)\n";
    return;
  }
  table.Print(os);
}

void PrintExplorationStats(const FumeStats& stats, std::ostream& os) {
  // Table 9 shape plus the per-rule attribution of the pruned delta:
  // R1 = contradictory merges, R2- / R2+ = support below / above the
  // bounds, R4 = weaker than parent, R5 = non-positive attribution.
  // R4/R5 subsets were explored (estimated) and pruned from expansion only,
  // so the pruned-% column remains possible vs. explored.
  TablePrinter table({"Level", "Possible subsets", "Subsets explored",
                      "Subsets pruned (%)", "R1", "R2-", "R2+", "R4", "R5"});
  for (const LevelStats& level : stats.levels) {
    table.AddRow({std::to_string(level.level), std::to_string(level.possible),
                  std::to_string(level.explored),
                  FormatDouble(level.pruned_percent(), 2),
                  std::to_string(level.rule1_pruned),
                  std::to_string(level.rule2_pruned_low),
                  std::to_string(level.rule2_expand_only),
                  std::to_string(level.rule4_pruned),
                  std::to_string(level.rule5_pruned)});
  }
  table.Print(os);
  os << "attribution evaluations: " << stats.attribution_evaluations
     << " (cache hits: " << stats.cache_hits << "), total time: "
     << FormatDouble(stats.total_seconds, 2) << " s\n";
  if (stats.rule3_unexpanded > 0) {
    os << "rule 3 stopped " << stats.rule3_unexpanded
       << " expandable subsets at the literal cap\n";
  }
}

void PrintViolationSummary(const FumeResult& result, FairnessMetric metric,
                           std::ostream& os) {
  os << "Violation: " << FairnessMetricName(metric) << " difference of "
     << FormatDouble(result.original_fairness, 4) << " on test data ("
     << (result.original_fairness < 0 ? "biased against the protected group"
                                      : "biased against the privileged group")
     << "); model accuracy " << FormatPercent(result.original_accuracy)
     << ".\n";
}

void PrintBaseline(const BaselineResult& baseline, std::ostream& os) {
  os << "DropUnprivUnfavor baseline: removed "
     << FormatPercent(baseline.removed_fraction) << " of training data ("
     << baseline.removed_rows << " rows), parity reduction "
     << FormatPercent(baseline.parity_reduction) << ", accuracy "
     << FormatPercent(baseline.original_accuracy) << " -> "
     << FormatPercent(baseline.new_accuracy) << ".\n";
}

std::string FormatReport(const FumeResult& result, const Schema& schema,
                         FairnessMetric metric,
                         const std::string& index_prefix) {
  std::ostringstream oss;
  PrintViolationSummary(result, metric, oss);
  PrintTopK(result, schema, index_prefix, oss);
  PrintExplorationStats(result.stats, oss);
  return oss.str();
}

}  // namespace fume
