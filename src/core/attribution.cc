#include "core/attribution.h"

#include <cmath>

#include "util/check.h"

namespace fume {

double ComputePhi(double original_fairness, double new_fairness) {
  const double original_bias = std::fabs(original_fairness);
  FUME_CHECK(original_bias > 0.0);
  return (std::fabs(new_fairness) - original_bias) / original_bias;
}

Result<AttributableSubset> EstimateAttribution(
    RemovalMethod* removal, const Predicate& predicate,
    const std::vector<RowId>& rows, int64_t num_train_rows,
    double original_fairness) {
  if (std::fabs(original_fairness) <= 0.0) {
    return Status::Invalid(
        "original fairness is zero: there is no violation to attribute");
  }
  FUME_ASSIGN_OR_RETURN(ModelEval eval, removal->EvaluateWithout(rows));
  AttributableSubset out;
  out.predicate = predicate;
  out.num_rows = static_cast<int64_t>(rows.size());
  out.support = num_train_rows == 0
                    ? 0.0
                    : static_cast<double>(rows.size()) /
                          static_cast<double>(num_train_rows);
  out.new_fairness = eval.fairness;
  out.new_accuracy = eval.accuracy;
  out.phi = ComputePhi(original_fairness, eval.fairness);
  out.attribution = -out.phi;
  return out;
}

}  // namespace fume
