#include "core/removal_method.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

UnlearnRemovalMethod::UnlearnRemovalMethod(const DareForest* model,
                                           const Dataset* test,
                                           GroupSpec group,
                                           FairnessMetric metric)
    : UnlearnRemovalMethod(model, test, group, metric, Options{}) {}

UnlearnRemovalMethod::UnlearnRemovalMethod(const DareForest* model,
                                           const Dataset* test,
                                           GroupSpec group,
                                           FairnessMetric metric,
                                           Options options)
    : model_(model),
      test_(test),
      group_(group),
      metric_(metric),
      options_(options) {}

UnlearnRemovalMethod::Worker& UnlearnRemovalMethod::WorkerSlot(int worker) {
  FUME_CHECK_GE(worker, 0);
  if (!in_parallel_ && static_cast<size_t>(worker) >= workers_.size()) {
    // Use without a BeginParallel bracket: grow on demand — safe because
    // serial_mutex_ serializes the whole non-bracketed evaluation. Inside a
    // bracket the slots are pre-sized, so growth (a data race) cannot occur.
    workers_.resize(static_cast<size_t>(worker) + 1);
  }
  FUME_CHECK(static_cast<size_t>(worker) < workers_.size());
  auto& slot = workers_[static_cast<size_t>(worker)];
  if (slot == nullptr) slot = std::make_unique<Worker>();
  return *slot;
}

const TestPredictionCache& UnlearnRemovalMethod::BaseCache() {
  // Seeded lazily at the first CoW evaluation: one full prediction pass
  // over the base model, amortized across every subsequent what-if.
  std::call_once(base_cache_once_,
                 [this] { base_cache_.Rebuild(*model_, *test_); });
  return base_cache_;
}

void UnlearnRemovalMethod::BeginParallel(int num_workers) {
  FUME_CHECK_GE(num_workers, 1);
  FUME_CHECK(!in_parallel_);
  if (workers_.size() < static_cast<size_t>(num_workers)) {
    workers_.resize(static_cast<size_t>(num_workers));
  }
  for (auto& slot : workers_) {
    if (slot == nullptr) slot = std::make_unique<Worker>();
  }
  if (options_.cow_delta) BaseCache();  // seed before threads fan out
  in_parallel_ = true;
}

void UnlearnRemovalMethod::EndParallel() {
  FUME_CHECK(in_parallel_);
  in_parallel_ = false;
  // The level barrier has passed: merge the contention-free per-worker
  // accumulators in slot order (deterministic, no per-evaluation mutex).
  for (auto& slot : workers_) {
    if (slot == nullptr) continue;
    deletion_stats_.Add(slot->stats);
    slot->stats = DeletionStats{};
  }
}

Result<ModelEval> UnlearnRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  return EvaluateWithoutOn(0, rows);
}

Result<ModelEval> UnlearnRemovalMethod::EvaluateWithoutOn(
    int worker, const std::vector<RowId>& rows) {
  if (!in_parallel_) {
    // Outside a BeginParallel bracket every caller resolves to the same
    // worker slot, so the interface's "safe to call concurrently" promise
    // is kept by serializing the whole evaluation. The bracketed path
    // (distinct worker ids, slots pre-sized, stats merged at EndParallel)
    // never takes this lock.
    std::lock_guard<std::mutex> lock(serial_mutex_);
    return EvaluateOnSlot(worker, rows);
  }
  return EvaluateOnSlot(worker, rows);
}

Result<ModelEval> UnlearnRemovalMethod::EvaluateOnSlot(
    int worker, const std::vector<RowId>& rows) {
  static obs::Counter* evals = obs::GetCounter("removal.unlearn.evaluations");
  static obs::Histogram* rows_hist =
      obs::GetHistogram("removal.unlearn.rows_per_evaluation");
  static obs::Counter* cow_evals =
      obs::GetCounter("removal.unlearn.cow_evaluations");
  static obs::Counter* cow_rows_rescored =
      obs::GetCounter("removal.unlearn.cow_rows_rescored");
  static obs::Counter* cow_trees_changed =
      obs::GetCounter("removal.unlearn.cow_trees_changed");
  static obs::Counter* arena_rescores =
      obs::GetCounter("removal.unlearn.arena_rescores");
  evals->Inc();
  rows_hist->Record(static_cast<int64_t>(rows.size()));
  obs::TraceSpan span("removal.unlearn.evaluate",
                      {{"rows", static_cast<int64_t>(rows.size())}});
  Worker& w = WorkerSlot(worker);
  DareForest what_if =
      options_.cow_delta ? model_->Clone() : model_->DeepClone();
  // A what-if delete is scored immediately, so deferring its retrains would
  // only add tag bookkeeping on top of the same rebuild work — run the
  // clone eagerly even when the base model streams with lazy_unlearn.
  if (what_if.config().lazy_unlearn) what_if.SetLazyUnlearn(false);
  FUME_RETURN_NOT_OK(
      what_if.DeleteRows(rows, /*per_tree=*/nullptr, &w.unlearn_scratch));
  w.stats.Add(what_if.deletion_stats());

  ModelEval eval;
  const std::vector<int>* preds = nullptr;
  std::vector<int> full_preds;
  if (options_.cow_delta) {
    cow_evals->Inc();
    // Rescore only test rows whose cached descent crosses a region the
    // deletion actually mutated (CoW sharing identifies those regions by
    // node identity) — or, for batches big enough to have unshared most
    // paths, stream the whole test set through the changed trees' flat
    // arenas. Results are byte-identical to PredictAll either way.
    const bool arena_rescore =
        options_.arena && rows.size() >= kArenaFullRescoreMinBatch;
    if (arena_rescore) arena_rescores->Inc();
    BaseCache().ScoreWhatIf(*model_, what_if, *test_, &w.scratch,
                            arena_rescore);
    cow_rows_rescored->Inc(w.scratch.rows_rescored);
    cow_trees_changed->Inc(w.scratch.trees_changed);
    preds = &w.scratch.preds;
  } else {
    // The deep-copy leg is the seed reference path: keep it on the
    // pointer walk so strategy-identity checks diff two independent
    // traversal implementations.
    full_preds = what_if.PredictAllPointer(*test_);
    preds = &full_preds;
  }
  eval.fairness = ComputeFairness(*test_, *preds, group_, metric_);
  int64_t correct = 0;
  for (int64_t r = 0; r < test_->num_rows(); ++r) {
    if ((*preds)[static_cast<size_t>(r)] == test_->Label(r)) ++correct;
  }
  eval.accuracy = test_->num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test_->num_rows());
  if (!in_parallel_) {
    deletion_stats_.Add(w.stats);
    w.stats = DeletionStats{};
  }
  return eval;
}

RetrainRemovalMethod::RetrainRemovalMethod(const Dataset* train,
                                           const Dataset* test,
                                           ForestConfig config,
                                           GroupSpec group,
                                           FairnessMetric metric)
    : train_(train),
      test_(test),
      config_(config),
      group_(group),
      metric_(metric) {}

Result<ModelEval> RetrainRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  static obs::Counter* evals = obs::GetCounter("removal.retrain.evaluations");
  evals->Inc();
  obs::TraceSpan span("removal.retrain.evaluate",
                      {{"rows", static_cast<int64_t>(rows.size())}});
  std::vector<int64_t> to_drop(rows.begin(), rows.end());
  const Dataset reduced = train_->DropRows(to_drop);
  FUME_ASSIGN_OR_RETURN(DareForest model, DareForest::Train(reduced, config_));
  ModelEval eval;
  eval.fairness = ComputeFairness(model, *test_, group_, metric_);
  eval.accuracy = model.Accuracy(*test_);
  return eval;
}

}  // namespace fume
