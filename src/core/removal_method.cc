#include "core/removal_method.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fume {

UnlearnRemovalMethod::UnlearnRemovalMethod(const DareForest* model,
                                           const Dataset* test,
                                           GroupSpec group,
                                           FairnessMetric metric)
    : model_(model), test_(test), group_(group), metric_(metric) {}

Result<ModelEval> UnlearnRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  static obs::Counter* evals = obs::GetCounter("removal.unlearn.evaluations");
  static obs::Histogram* rows_hist =
      obs::GetHistogram("removal.unlearn.rows_per_evaluation");
  evals->Inc();
  rows_hist->Record(static_cast<int64_t>(rows.size()));
  obs::TraceSpan span("removal.unlearn.evaluate",
                      {{"rows", static_cast<int64_t>(rows.size())}});
  DareForest what_if = model_->Clone();
  FUME_RETURN_NOT_OK(what_if.DeleteRows(rows));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    deletion_stats_.Add(what_if.deletion_stats());
  }
  // One prediction pass serves both the fairness metric and accuracy.
  const std::vector<int> preds = what_if.PredictAll(*test_);
  ModelEval eval;
  eval.fairness = ComputeFairness(*test_, preds, group_, metric_);
  int64_t correct = 0;
  for (int64_t r = 0; r < test_->num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test_->Label(r)) ++correct;
  }
  eval.accuracy = test_->num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test_->num_rows());
  return eval;
}

RetrainRemovalMethod::RetrainRemovalMethod(const Dataset* train,
                                           const Dataset* test,
                                           ForestConfig config,
                                           GroupSpec group,
                                           FairnessMetric metric)
    : train_(train),
      test_(test),
      config_(config),
      group_(group),
      metric_(metric) {}

Result<ModelEval> RetrainRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  static obs::Counter* evals = obs::GetCounter("removal.retrain.evaluations");
  evals->Inc();
  obs::TraceSpan span("removal.retrain.evaluate",
                      {{"rows", static_cast<int64_t>(rows.size())}});
  std::vector<int64_t> to_drop(rows.begin(), rows.end());
  const Dataset reduced = train_->DropRows(to_drop);
  FUME_ASSIGN_OR_RETURN(DareForest model, DareForest::Train(reduced, config_));
  ModelEval eval;
  eval.fairness = ComputeFairness(model, *test_, group_, metric_);
  eval.accuracy = model.Accuracy(*test_);
  return eval;
}

}  // namespace fume
