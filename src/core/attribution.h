// Subset attribution toward bias (paper Definitions 2.2/2.3, Eq. 2).

#ifndef FUME_CORE_ATTRIBUTION_H_
#define FUME_CORE_ATTRIBUTION_H_

#include "core/removal_method.h"
#include "subset/predicate.h"
#include "util/result.h"

namespace fume {

/// \brief One evaluated training-data subset.
struct AttributableSubset {
  Predicate predicate;
  double support = 0.0;
  int64_t num_rows = 0;
  /// phi_T of Definition 2.3: (|F(h_T)| - |F(h)|) / |F(h)|.
  /// Negative means removing the subset reduces bias.
  double phi = 0.0;
  /// -phi, the fraction of bias removed — the paper's "parity reduction"
  /// (e.g. 0.978 is reported as 97.8%). Positive = subset is attributable.
  double attribution = 0.0;
  /// Signed fairness of the counterfactual model, F(h_T, D_test).
  double new_fairness = 0.0;
  double new_accuracy = 0.0;
};

/// phi from the original and counterfactual fairness values.
/// |original_fairness| must be nonzero (the violation being explained).
double ComputePhi(double original_fairness, double new_fairness);

/// Evaluates one subset of training rows through a removal method.
Result<AttributableSubset> EstimateAttribution(
    RemovalMethod* removal, const Predicate& predicate,
    const std::vector<RowId>& rows, int64_t num_train_rows,
    double original_fairness);

}  // namespace fume

#endif  // FUME_CORE_ATTRIBUTION_H_
