// DropUnprivUnfavor baseline (paper §6.1.4): drop every training row where
// the unprivileged group received the unfavorable outcome, retrain, and
// measure the parity change.

#ifndef FUME_CORE_BASELINE_H_
#define FUME_CORE_BASELINE_H_

#include "fairness/metrics.h"
#include "forest/forest.h"
#include "util/result.h"

namespace fume {

struct BaselineResult {
  /// Fraction of training rows removed.
  double removed_fraction = 0.0;
  int64_t removed_rows = 0;
  double original_fairness = 0.0;
  double new_fairness = 0.0;
  /// Fraction of |original bias| removed; negative when the baseline
  /// overshoots into the opposite disparity (the paper's SQF observation).
  double parity_reduction = 0.0;
  double original_accuracy = 0.0;
  double new_accuracy = 0.0;
};

/// Runs the baseline: removes rows with (sensitive != privileged_code AND
/// label == 0) and retrains with `config`.
Result<BaselineResult> RunDropUnprivUnfavor(const Dataset& train,
                                            const Dataset& test,
                                            const ForestConfig& config,
                                            const GroupSpec& group,
                                            FairnessMetric metric);

}  // namespace fume

#endif  // FUME_CORE_BASELINE_H_
