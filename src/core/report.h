// Human-readable rendering of FUME results (the form of the paper's
// Tables 3-7 plus search statistics).

#ifndef FUME_CORE_REPORT_H_
#define FUME_CORE_REPORT_H_

#include <ostream>
#include <string>

#include "core/baseline.h"
#include "core/fume.h"

namespace fume {

/// Renders the top-k table: index, pattern, support, parity reduction.
/// `index_prefix` labels rows like the paper ("GS" -> GS1..GS5).
void PrintTopK(const FumeResult& result, const Schema& schema,
               const std::string& index_prefix, std::ostream& os);

/// Renders exploration statistics per level (paper Table 9 shape).
void PrintExplorationStats(const FumeStats& stats, std::ostream& os);

/// One-paragraph summary of the violation being explained.
void PrintViolationSummary(const FumeResult& result, FairnessMetric metric,
                           std::ostream& os);

/// Renders the DropUnprivUnfavor comparison line.
void PrintBaseline(const BaselineResult& baseline, std::ostream& os);

/// Everything above concatenated into a string (for examples/logging).
std::string FormatReport(const FumeResult& result, const Schema& schema,
                         FairnessMetric metric,
                         const std::string& index_prefix);

}  // namespace fume

#endif  // FUME_CORE_REPORT_H_
