#include "core/baseline.h"

#include <cmath>

namespace fume {

Result<BaselineResult> RunDropUnprivUnfavor(const Dataset& train,
                                            const Dataset& test,
                                            const ForestConfig& config,
                                            const GroupSpec& group,
                                            FairnessMetric metric) {
  FUME_ASSIGN_OR_RETURN(DareForest original, DareForest::Train(train, config));
  BaselineResult result;
  result.original_fairness = ComputeFairness(original, test, group, metric);
  result.original_accuracy = original.Accuracy(test);

  std::vector<int64_t> to_drop;
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    const bool unprivileged =
        train.Code(r, group.sensitive_attr) != group.privileged_code;
    if (unprivileged && train.Label(r) == 0) to_drop.push_back(r);
  }
  result.removed_rows = static_cast<int64_t>(to_drop.size());
  result.removed_fraction =
      train.num_rows() == 0
          ? 0.0
          : static_cast<double>(to_drop.size()) /
                static_cast<double>(train.num_rows());

  const Dataset reduced = train.DropRows(to_drop);
  if (reduced.num_rows() == 0) {
    return Status::Invalid("baseline removed the entire training set");
  }
  FUME_ASSIGN_OR_RETURN(DareForest retrained,
                        DareForest::Train(reduced, config));
  result.new_fairness = ComputeFairness(retrained, test, group, metric);
  result.new_accuracy = retrained.Accuracy(test);
  const double original_bias = std::fabs(result.original_fairness);
  result.parity_reduction =
      original_bias == 0.0
          ? 0.0
          : (original_bias - std::fabs(result.new_fairness)) / original_bias;
  return result;
}

}  // namespace fume
