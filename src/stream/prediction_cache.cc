#include "stream/prediction_cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {
namespace stream {

void TestPredictionCache::WalkTree(const DareForest& forest,
                                   const Dataset& test, int t) {
  const int64_t n_rows = test.num_rows();
  auto& leaves = leaf_[static_cast<size_t>(t)];
  auto& probs = prob_[static_cast<size_t>(t)];
  leaves.resize(static_cast<size_t>(n_rows));
  probs.resize(static_cast<size_t>(n_rows));
  const TreeNode* root = forest.tree(t).root();
  for (int64_t r = 0; r < n_rows; ++r) {
    const TreeNode* n = root;
    if (n != nullptr && n->count != 0) {
      while (!n->is_leaf()) {
        n = test.Code(r, n->attr) <= n->threshold ? n->left.get()
                                                  : n->right.get();
      }
    }
    leaves[static_cast<size_t>(r)] = n;
    probs[static_cast<size_t>(r)] =
        (n == nullptr || n->count == 0)
            ? 0.5
            : static_cast<double>(n->pos) / static_cast<double>(n->count);
  }
}

void TestPredictionCache::ResumeTree(const Dataset& test, int t) {
  auto& leaves = leaf_[static_cast<size_t>(t)];
  auto& probs = prob_[static_cast<size_t>(t)];
  for (size_t r = 0; r < leaves.size(); ++r) {
    const TreeNode* n = leaves[r];
    if (n != nullptr && n->count != 0 && !n->is_leaf()) {
      // An insert rebuilt this leaf into a split in place (same address);
      // the row still reaches it, so finish the walk from here.
      do {
        n = test.Code(static_cast<int64_t>(r), n->attr) <= n->threshold
                ? n->left.get()
                : n->right.get();
      } while (!n->is_leaf());
      leaves[r] = n;
    }
    probs[r] = (n == nullptr || n->count == 0)
                   ? 0.5
                   : static_cast<double>(n->pos) /
                         static_cast<double>(n->count);
  }
}

void TestPredictionCache::Finalize(const DareForest& forest) {
  const size_t n_rows = pred_.size();
  const double num_trees = static_cast<double>(forest.num_trees());
  for (size_t r = 0; r < n_rows; ++r) {
    double sum = 0.0;
    for (int t = 0; t < forest.num_trees(); ++t) {
      sum += prob_[static_cast<size_t>(t)][r];
    }
    mean_prob_[r] = sum / num_trees;
    pred_[r] = mean_prob_[r] >= 0.5 ? 1 : 0;
  }
}

void TestPredictionCache::Rebuild(const DareForest& forest,
                                  const Dataset& test) {
  obs::TraceSpan span("stream.predcache.rebuild",
                      {{"trees", forest.num_trees()},
                       {"rows", test.num_rows()}});
  leaf_.assign(static_cast<size_t>(forest.num_trees()), {});
  prob_.assign(static_cast<size_t>(forest.num_trees()), {});
  mean_prob_.assign(static_cast<size_t>(test.num_rows()), 0.0);
  pred_.assign(static_cast<size_t>(test.num_rows()), 0);
  for (int t = 0; t < forest.num_trees(); ++t) WalkTree(forest, test, t);
  Finalize(forest);
}

void TestPredictionCache::Update(const DareForest& forest, const Dataset& test,
                                 const std::vector<bool>& tree_dirty) {
  FUME_CHECK_EQ(tree_dirty.size(), leaf_.size());
  FUME_CHECK_EQ(static_cast<size_t>(forest.num_trees()), leaf_.size());
  static obs::Counter* rewalked =
      obs::GetCounter("stream.predcache.trees_rewalked");
  static obs::Counter* resumed =
      obs::GetCounter("stream.predcache.trees_refreshed");
  obs::TraceSpan span("stream.predcache.update");
  int64_t walked = 0;
  for (int t = 0; t < forest.num_trees(); ++t) {
    if (tree_dirty[static_cast<size_t>(t)]) {
      WalkTree(forest, test, t);
      ++walked;
    } else {
      ResumeTree(test, t);
    }
  }
  rewalked->Inc(walked);
  resumed->Inc(forest.num_trees() - walked);
  span.AddArg("rewalked", walked);
  Finalize(forest);
}

}  // namespace stream
}  // namespace fume
