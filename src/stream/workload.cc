#include "stream/workload.h"

#include <algorithm>

#include "util/rng.h"

namespace fume {
namespace stream {

Result<std::vector<StreamOp>> SynthesizeOpLog(const Dataset& pool,
                                              int64_t initial_rows,
                                              const WorkloadOptions& options) {
  if (options.num_ops < 1) return Status::Invalid("num_ops must be >= 1");
  if (options.insert_batch < 1 || options.delete_batch < 1) {
    return Status::Invalid("batch sizes must be >= 1");
  }
  if (!pool.schema().AllCategorical()) {
    return Status::Invalid("op-log pool must be all-categorical");
  }
  Rng rng(options.seed);
  std::vector<StreamOp> ops;
  ops.reserve(static_cast<size_t>(options.num_ops));

  // Live ids, in engine id space: initial rows then inserted rows.
  std::vector<RowId> live(static_cast<size_t>(initial_rows));
  for (int64_t r = 0; r < initial_rows; ++r) live[static_cast<size_t>(r)] = static_cast<RowId>(r);
  RowId next_id = static_cast<RowId>(initial_rows);
  int64_t pool_cursor = 0;

  int64_t seq = 0;
  for (int i = 0; i < options.num_ops; ++i) {
    ++seq;
    const bool last = i == options.num_ops - 1;
    if (last || (options.checkpoint_every > 0 &&
                 (i + 1) % options.checkpoint_every == 0)) {
      ops.push_back(StreamOp::Checkpoint(seq));
      continue;
    }
    const bool pool_dry = pool_cursor >= pool.num_rows();
    const bool can_delete =
        static_cast<int>(live.size()) > options.delete_batch;
    bool do_delete = can_delete && rng.NextBernoulli(options.delete_fraction);
    if (pool_dry && !can_delete) {
      return Status::Invalid("op-log pool exhausted with nothing left to "
                             "delete; supply more pool rows or fewer ops");
    }
    if (pool_dry) do_delete = true;
    if (do_delete) {
      // Sample delete_batch distinct live ids (swap-to-back so the draw is
      // uniform without replacement).
      std::vector<RowId> doomed;
      doomed.reserve(static_cast<size_t>(options.delete_batch));
      for (int d = 0; d < options.delete_batch && !live.empty(); ++d) {
        const size_t pick = static_cast<size_t>(
            rng.NextBounded(static_cast<uint64_t>(live.size())));
        doomed.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      std::sort(doomed.begin(), doomed.end());
      ops.push_back(StreamOp::Delete(seq, std::move(doomed)));
    } else {
      std::vector<StreamRow> rows;
      const int64_t take = std::min<int64_t>(options.insert_batch,
                                             pool.num_rows() - pool_cursor);
      rows.reserve(static_cast<size_t>(take));
      for (int64_t r = 0; r < take; ++r, ++pool_cursor) {
        StreamRow row;
        row.label = pool.Label(pool_cursor);
        row.codes.resize(static_cast<size_t>(pool.num_attributes()));
        for (int j = 0; j < pool.num_attributes(); ++j) {
          row.codes[static_cast<size_t>(j)] = pool.Code(pool_cursor, j);
        }
        rows.push_back(std::move(row));
        live.push_back(next_id++);
      }
      ops.push_back(StreamOp::Insert(seq, std::move(rows)));
    }
  }
  return ops;
}

}  // namespace stream
}  // namespace fume
