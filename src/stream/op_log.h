// OpLog: the ordered stream of training-set mutations a StreamEngine
// consumes. Each operation carries a strictly increasing sequence number so
// a log is replayable from any checkpoint: restore the engine, then re-read
// the log skipping everything at or below the checkpoint's sequence.
//
// Line-delimited text format (docs/streaming.md), one operation per line:
//
//   I <seq> <label>:<code>,<code>,...  [<label>:<codes> ...]   insert batch
//   D <seq> <row-id> [<row-id> ...]                            delete batch
//   C <seq>                                                    checkpoint
//
// Row ids name rows by their engine-assigned id: the initial training rows
// occupy [0, n0) and every inserted row gets the next id in arrival order —
// exactly the DaRE training-store ids, stable for the engine's lifetime.
// Blank lines and lines starting with '#' are ignored.

#ifndef FUME_STREAM_OP_LOG_H_
#define FUME_STREAM_OP_LOG_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "forest/training_store.h"
#include "util/result.h"

namespace fume {
namespace stream {

enum class OpKind : uint8_t {
  kInsert,
  kDelete,
  kCheckpoint,
};

const char* OpKindName(OpKind kind);

/// One training row in transit: category codes plus the binary label.
struct StreamRow {
  std::vector<int32_t> codes;
  int label = 0;

  friend bool operator==(const StreamRow& a, const StreamRow& b) {
    return a.label == b.label && a.codes == b.codes;
  }
};

/// One op-log entry. Exactly one payload is meaningful per kind:
/// rows for kInsert, row_ids for kDelete, neither for kCheckpoint.
struct StreamOp {
  int64_t seq = 0;
  OpKind kind = OpKind::kCheckpoint;
  std::vector<StreamRow> rows;
  std::vector<RowId> row_ids;

  static StreamOp Insert(int64_t seq, std::vector<StreamRow> rows);
  static StreamOp Delete(int64_t seq, std::vector<RowId> row_ids);
  static StreamOp Checkpoint(int64_t seq);

  friend bool operator==(const StreamOp& a, const StreamOp& b) {
    return a.seq == b.seq && a.kind == b.kind && a.rows == b.rows &&
           a.row_ids == b.row_ids;
  }
};

/// Renders one op as its log line (no trailing newline).
std::string FormatOp(const StreamOp& op);

/// Parses one log line. Fails on malformed syntax; sequencing is checked by
/// ReadOpLog, not here.
Result<StreamOp> ParseOp(const std::string& line);

/// Writes ops as one line each, preceded by a `# fume-oplog v1` header.
Status WriteOpLog(const std::vector<StreamOp>& ops, std::ostream& out);
Status WriteOpLogFile(const std::vector<StreamOp>& ops,
                      const std::string& path);

/// Reads a whole log, skipping comments/blanks and any op with
/// seq <= after_seq (pass the checkpoint's sequence to resume; -1 reads
/// everything). Fails on malformed lines or non-increasing sequence numbers.
Result<std::vector<StreamOp>> ReadOpLog(std::istream& in,
                                        int64_t after_seq = -1);
Result<std::vector<StreamOp>> ReadOpLogFile(const std::string& path,
                                            int64_t after_seq = -1);

}  // namespace stream
}  // namespace fume

#endif  // FUME_STREAM_OP_LOG_H_
