#include "stream/op_log.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace fume {
namespace stream {

namespace {

constexpr const char* kHeader = "# fume-oplog v1";

Status Malformed(const std::string& line, const std::string& why) {
  return Status::Invalid("op-log line '" + line + "': " + why);
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kDelete:
      return "delete";
    case OpKind::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

StreamOp StreamOp::Insert(int64_t seq, std::vector<StreamRow> rows) {
  StreamOp op;
  op.seq = seq;
  op.kind = OpKind::kInsert;
  op.rows = std::move(rows);
  return op;
}

StreamOp StreamOp::Delete(int64_t seq, std::vector<RowId> row_ids) {
  StreamOp op;
  op.seq = seq;
  op.kind = OpKind::kDelete;
  op.row_ids = std::move(row_ids);
  return op;
}

StreamOp StreamOp::Checkpoint(int64_t seq) {
  StreamOp op;
  op.seq = seq;
  op.kind = OpKind::kCheckpoint;
  return op;
}

std::string FormatOp(const StreamOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case OpKind::kInsert: {
      out << "I " << op.seq;
      for (const StreamRow& row : op.rows) {
        out << ' ' << row.label << ':';
        for (size_t j = 0; j < row.codes.size(); ++j) {
          if (j > 0) out << ',';
          out << row.codes[j];
        }
      }
      break;
    }
    case OpKind::kDelete: {
      out << "D " << op.seq;
      for (RowId id : op.row_ids) out << ' ' << id;
      break;
    }
    case OpKind::kCheckpoint:
      out << "C " << op.seq;
      break;
  }
  return out.str();
}

Result<StreamOp> ParseOp(const std::string& line) {
  std::vector<std::string> fields;
  for (std::string_view piece : Split(Trim(line), ' ')) {
    if (!piece.empty()) fields.emplace_back(piece);
  }
  if (fields.size() < 2 || fields[0].size() != 1) {
    return Malformed(line, "expected '<I|D|C> <seq> ...'");
  }
  int seq_int = 0;
  if (!ParseInt(fields[1], &seq_int) || seq_int < 0) {
    return Malformed(line, "bad sequence number '" + fields[1] + "'");
  }
  const int64_t seq = seq_int;
  switch (fields[0][0]) {
    case 'C': {
      if (fields.size() != 2) return Malformed(line, "checkpoint takes no payload");
      return StreamOp::Checkpoint(seq);
    }
    case 'D': {
      if (fields.size() < 3) return Malformed(line, "delete needs row ids");
      std::vector<RowId> ids;
      ids.reserve(fields.size() - 2);
      for (size_t i = 2; i < fields.size(); ++i) {
        int id = 0;
        if (!ParseInt(fields[i], &id) || id < 0) {
          return Malformed(line, "bad row id '" + fields[i] + "'");
        }
        ids.push_back(static_cast<RowId>(id));
      }
      return StreamOp::Delete(seq, std::move(ids));
    }
    case 'I': {
      if (fields.size() < 3) return Malformed(line, "insert needs rows");
      std::vector<StreamRow> rows;
      rows.reserve(fields.size() - 2);
      size_t expected_codes = 0;
      for (size_t i = 2; i < fields.size(); ++i) {
        const std::vector<std::string> halves = Split(fields[i], ':');
        if (halves.size() != 2) {
          return Malformed(line, "row '" + fields[i] +
                                     "' is not <label>:<codes>");
        }
        StreamRow row;
        if (!ParseInt(halves[0], &row.label) ||
            (row.label != 0 && row.label != 1)) {
          return Malformed(line, "label must be 0 or 1 in '" + fields[i] + "'");
        }
        for (const std::string& code_str : Split(halves[1], ',')) {
          int code = 0;
          if (!ParseInt(code_str, &code) || code < 0) {
            return Malformed(line, "bad code '" + code_str + "'");
          }
          row.codes.push_back(code);
        }
        if (row.codes.empty()) return Malformed(line, "row has no codes");
        if (expected_codes == 0) {
          expected_codes = row.codes.size();
        } else if (row.codes.size() != expected_codes) {
          return Malformed(line, "rows disagree on attribute count");
        }
        rows.push_back(std::move(row));
      }
      return StreamOp::Insert(seq, std::move(rows));
    }
    default:
      return Malformed(line, "unknown op kind '" + fields[0] + "'");
  }
}

Status WriteOpLog(const std::vector<StreamOp>& ops, std::ostream& out) {
  out << kHeader << "\n";
  for (const StreamOp& op : ops) out << FormatOp(op) << "\n";
  if (!out) return Status::IOError("op-log write failed");
  return Status::OK();
}

Status WriteOpLogFile(const std::vector<StreamOp>& ops,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteOpLog(ops, out);
}

Result<std::vector<StreamOp>> ReadOpLog(std::istream& in, int64_t after_seq) {
  std::vector<StreamOp> ops;
  std::string line;
  int64_t last_seq = -1;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    FUME_ASSIGN_OR_RETURN(StreamOp op, ParseOp(line));
    if (op.seq <= last_seq) {
      return Status::Invalid("op-log sequence numbers must strictly "
                             "increase (saw " +
                             std::to_string(op.seq) + " after " +
                             std::to_string(last_seq) + ")");
    }
    last_seq = op.seq;
    if (op.seq <= after_seq) continue;
    ops.push_back(std::move(op));
  }
  if (in.bad()) return Status::IOError("op-log read failed");
  return ops;
}

Result<std::vector<StreamOp>> ReadOpLogFile(const std::string& path,
                                            int64_t after_seq) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadOpLog(in, after_seq);
}

}  // namespace stream
}  // namespace fume
