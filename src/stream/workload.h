// Deterministic op-log synthesis for tests, the fume_stream CLI and the
// streaming bench: interleaves insert batches drawn from a held-out row
// pool with deletes of currently-live rows, dropping a checkpoint every
// few ops.

#ifndef FUME_STREAM_WORKLOAD_H_
#define FUME_STREAM_WORKLOAD_H_

#include <cstdint>

#include "data/dataset.h"
#include "stream/op_log.h"

namespace fume {
namespace stream {

struct WorkloadOptions {
  /// Total operations to emit (checkpoints count toward this).
  int num_ops = 100;
  /// Rows per insert op.
  int insert_batch = 5;
  /// Rows per delete op.
  int delete_batch = 3;
  /// Probability that a non-checkpoint op is a delete rather than an
  /// insert (inserts also take over whenever the pool runs dry).
  double delete_fraction = 0.4;
  /// Emit a Checkpoint op every this many ops (0 = only the final one).
  int checkpoint_every = 25;
  uint64_t seed = 17;
};

/// Builds an op-log against an engine whose live rows are currently
/// [0, initial_rows). Insert ops consume `pool` rows in order; delete ops
/// remove uniformly chosen live rows (initial or previously inserted). The
/// log always ends with a Checkpoint. Deterministic in (pool, options).
Result<std::vector<StreamOp>> SynthesizeOpLog(const Dataset& pool,
                                              int64_t initial_rows,
                                              const WorkloadOptions& options);

}  // namespace stream
}  // namespace fume

#endif  // FUME_STREAM_WORKLOAD_H_
