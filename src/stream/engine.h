// StreamEngine: a long-lived incremental FUME service. It consumes an
// ordered op-log of training-set mutations (stream/op_log.h), applies them
// exactly to a DaRE forest via AddData/DeleteRows, keeps the group-fairness
// metric current through a per-tree test-prediction cache, and re-runs the
// FUME top-k search only when the metric has drifted past a configurable
// threshold since the last search — otherwise it serves the cached top-k
// with a staleness annotation.
//
// Exactness contract (pinned by tests/stream_test.cc): after any prefix of
// the op-log, the engine's forest predictions, fairness metric and — right
// after a search — top-k explanations are byte-identical to training a
// fresh forest on the surviving rows (same config/seed) and running a
// fresh FUME search on it. Checkpoints serialize forest + engine state, so
// an engine killed mid-log can be restored and replayed to the same state
// an uninterrupted run reaches (docs/streaming.md).

#ifndef FUME_STREAM_ENGINE_H_
#define FUME_STREAM_ENGINE_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fume.h"
#include "forest/sharded_forest.h"
#include "stream/op_log.h"
#include "stream/prediction_cache.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace fume {
namespace stream {

/// When to re-run the FUME search. The signed metric F is compared against
/// its value at the last search; a re-search triggers when EITHER bound is
/// crossed. Set both to infinity to pin the cached explanation forever.
struct DriftPolicy {
  /// Absolute drift: |F_now - F_last_search| >= abs_threshold.
  double abs_threshold = 0.01;
  /// Relative drift: |F_now - F_last_search| >= rel_threshold * |F_last|.
  /// Ignored while |F_last| is 0.
  double rel_threshold = 0.10;

  bool ShouldSearch(double last, double now) const;
};

struct StreamEngineConfig {
  ForestConfig forest;
  FumeConfig fume;
  DriftPolicy drift;
  /// shard.num_shards > 1 runs the engine over a SISA ShardedForest: ops
  /// route to owning shards (fanned out on the search pool), searches use
  /// ShardedRemovalMethod, and checkpoints re-serialize only dirty shards.
  /// The monolithic path is untouched at the default of 1.
  ShardConfig shard;
  /// Refresh the explanation at Checkpoint ops when any op was applied
  /// since the last search, regardless of drift — so checkpointed top-k is
  /// never stale (and the exactness tests can compare it cold).
  bool search_on_checkpoint = true;
  /// When non-empty, every Checkpoint op (re)writes this checkpoint file.
  std::string checkpoint_path;
};

/// What one Apply() did, for timelines and logs.
struct OpOutcome {
  int64_t seq = 0;
  OpKind kind = OpKind::kCheckpoint;
  /// Signed F(h, D_test) after the op.
  double metric = 0.0;
  double accuracy = 0.0;
  int64_t rows_live = 0;
  /// True when this op triggered a FUME re-search (drift or checkpoint).
  bool searched = false;
  /// Ops applied since the serving explanation was last refreshed
  /// (0 right after a search).
  int64_t staleness_ops = 0;
  double apply_seconds = 0.0;
  double search_seconds = 0.0;
};

class StreamEngine {
 public:
  /// Trains the initial forest on `initial_train`, primes the prediction
  /// cache against `test`, and runs the first search (unless |F| is below
  /// config.fume.min_original_bias — then the engine starts with an empty
  /// explanation and searches once a violation appears).
  static Result<StreamEngine> Create(const Dataset& initial_train,
                                     Dataset test, StreamEngineConfig config);

  /// Applies one op. Ops must arrive with strictly increasing seq.
  Result<OpOutcome> Apply(const StreamOp& op);

  /// Convenience: applies every op in order, returning per-op outcomes.
  Result<std::vector<OpOutcome>> Replay(const std::vector<StreamOp>& ops);

  // ---- lazy deferral (config.forest.lazy_unlearn) --------------------
  /// Retires every deferred subtree retrain, folds the retrain work into
  /// the prediction cache's dirty flags, and refreshes the metric. No-op
  /// unless a delete burst is pending. Called automatically at every flush
  /// boundary — checkpoint ops, inserts, SaveCheckpoint — and callable
  /// directly before reading forest()/current_metric() mid-burst.
  void FlushLazy();
  /// True while a deferred delete burst is pending: the forest may hold
  /// lazy tags and current_metric()/prediction_cache() reflect the state
  /// at the last flush, not the last op. Do NOT run predictions through
  /// forest() while deferring — call FlushLazy() first (the forest would
  /// flush itself on first descent, stranding the engine's cached leaf
  /// pointers in freed nodes).
  bool deferring() const {
    return metric_stale_ ||
           (sharded_.has_value() ? sharded_->HasLazyTags()
                                 : forest_.HasLazyTags());
  }

  // ---- serving state -------------------------------------------------
  int64_t last_seq() const { return last_seq_; }
  /// Signed F(h, D_test) of the current model.
  double current_metric() const { return metric_; }
  double current_accuracy() const { return accuracy_; }
  /// F at the last search — the drift reference.
  double metric_at_last_search() const { return metric_at_last_search_; }
  /// Ops applied since the last search (the staleness annotation).
  int64_t staleness() const { return staleness_ops_; }
  /// Cached explanation from the last search; nullptr when the model
  /// satisfied the metric at every search so far. Valid until the next
  /// Apply() that searches.
  const FumeResult* explanation() const {
    return explanation_.has_value() ? &*explanation_ : nullptr;
  }
  /// Monolithic accessors; meaningless when is_sharded() (the engine then
  /// holds an empty DareForest — use sharded_forest() and
  /// shard_prediction_cache() instead).
  const DareForest& forest() const { return forest_; }
  /// Warm test-set prediction cache, kept exact after every Apply. A served
  /// snapshot copies it so ScoreWhatIf runs off the snapshot's own state.
  const TestPredictionCache& prediction_cache() const { return cache_; }
  /// True when config().shard.num_shards > 1 engaged the SISA path.
  bool is_sharded() const { return sharded_.has_value(); }
  const ShardedForest& sharded_forest() const { return *sharded_; }
  const ShardedPredictionCache& shard_prediction_cache() const {
    return shard_cache_;
  }
  const StreamEngineConfig& config() const { return config_; }
  /// Surviving training rows, dense, in arrival order — what a cold
  /// retrain would train on.
  const Dataset& train_data() const { return train_data_; }
  const Dataset& test_data() const { return test_; }
  int64_t rows_live() const { return train_data_.num_rows(); }
  /// Engine id (training-store id) of each live row, dense order.
  const std::vector<RowId>& live_ids() const { return store_ids_; }

  // ---- checkpoint / restore ------------------------------------------
  /// Serializes forest + engine state (seq, metrics, drift reference,
  /// live-id map, cached top-k). Search statistics and all_candidates are
  /// not persisted — a restored engine serves the same top-k but reports
  /// empty stats until its next search.
  Status SaveCheckpoint(std::ostream& out) const;
  Status SaveCheckpointToFile(const std::string& path) const;

  /// Rebuilds an engine from a checkpoint. `schema` must be the training
  /// schema the original engine was created with (the checkpoint stores
  /// codes, not category names); `test` and `config` likewise. Replaying
  /// the ops with seq > last_seq() afterwards reproduces the uninterrupted
  /// engine's state exactly.
  static Result<StreamEngine> Restore(std::istream& in, const Schema& schema,
                                      Dataset test, StreamEngineConfig config);
  static Result<StreamEngine> RestoreFromFile(const std::string& path,
                                              const Schema& schema,
                                              Dataset test,
                                              StreamEngineConfig config);

 private:
  StreamEngine(Dataset test, StreamEngineConfig config);

  Status ApplyInsert(const StreamOp& op);
  Status ApplyDelete(const StreamOp& op);
  /// Recomputes metric_ / accuracy_ from the prediction cache.
  void RefreshMetric();
  /// Runs the FUME search against the current model (or records "no
  /// violation" when |F| is below the configured floor).
  Status RunSearch();
  void RebuildLiveIndex();
  /// The shared pool, created lazily at first use (nullptr while
  /// config_.fume.num_threads <= 1). Serves both search fan-out and
  /// sharded op fan-out — never both at once (ops and searches are
  /// strictly sequenced by Apply).
  util::ThreadPool* MaybePool();
  /// Builds the per-shard cache-dirty report from an op's per-shard
  /// per-tree stats, folding in (and clearing) shard_lazy_dirty_; also
  /// marks touched shards dirty for the next incremental checkpoint.
  std::vector<std::vector<bool>> FoldShardDirty(
      const std::vector<std::vector<DeletionStats>>& per_shard);

  Dataset test_;
  StreamEngineConfig config_;
  DareForest forest_;
  /// Engaged instead of forest_ when config_.shard.num_shards > 1.
  std::optional<ShardedForest> sharded_;
  /// Per-shard warm prediction cache (sharded mode only).
  ShardedPredictionCache shard_cache_;
  /// Shard-affine kernel scratches for sharded ops (entry s serves shard s).
  std::vector<DeletionScratch> shard_scratch_;
  /// Reused across every insert/delete op this engine applies, keeping the
  /// unlearning kernel allocation-free in the steady state.
  DeletionScratch unlearn_scratch_;
  Dataset train_data_;
  /// store_ids_[dense row] = engine/store id; parallel to train_data_.
  std::vector<RowId> store_ids_;
  /// Inverse of store_ids_ for delete lookups.
  std::unordered_map<RowId, int64_t> dense_of_id_;
  TestPredictionCache cache_;
  /// Shared evaluation pool for every search this engine runs; created at
  /// the first search with config_.fume.num_threads > 1.
  std::unique_ptr<util::ThreadPool> pool_;

  /// Per-tree cache dirtiness accumulated across a deferred delete burst
  /// (CoW unshares and in-place leaf removals invalidate cached pointers
  /// even when the subtree retrain itself is deferred). Merged into the
  /// flush's own dirty flags at the next flush boundary.
  std::vector<bool> lazy_dirty_;
  /// Sharded counterpart of lazy_dirty_: entry s is shard s's accumulated
  /// per-tree dirtiness (empty = clean since the last flush boundary).
  std::vector<std::vector<bool>> shard_lazy_dirty_;
  /// Incremental-checkpoint state (sharded mode): the last serialized
  /// bytes per shard and which shards an op has dirtied since. Mutable
  /// because SaveCheckpoint is logically const (same reasoning as its
  /// FlushLazy const_cast).
  mutable std::vector<std::string> ckpt_blobs_;
  mutable std::vector<bool> ckpt_dirty_;
  /// True between a deferred delete and the next flush boundary: metric_,
  /// accuracy_ and cache_ describe the pre-burst model. Drift gating is
  /// suspended while set (evaluated at flush points only).
  bool metric_stale_ = false;

  int64_t last_seq_ = -1;
  double metric_ = 0.0;
  double accuracy_ = 0.0;
  double metric_at_last_search_ = 0.0;
  int64_t staleness_ops_ = 0;
  std::optional<FumeResult> explanation_;
};

}  // namespace stream
}  // namespace fume

#endif  // FUME_STREAM_ENGINE_H_
