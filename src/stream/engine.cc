#include "stream/engine.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "forest/serialize.h"

#include "core/removal_method.h"
#include "fairness/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace fume {
namespace stream {

namespace {

// ---- obs shorthands (docs/observability.md naming scheme).
struct StreamMetrics {
  obs::Counter* ops = obs::GetCounter("stream.ops.applied");
  obs::Counter* inserts = obs::GetCounter("stream.ops.inserts");
  obs::Counter* deletes = obs::GetCounter("stream.ops.deletes");
  obs::Counter* checkpoints = obs::GetCounter("stream.ops.checkpoints");
  obs::Counter* rows_added = obs::GetCounter("stream.rows.inserted");
  obs::Counter* rows_deleted = obs::GetCounter("stream.rows.deleted");
  obs::Counter* searches = obs::GetCounter("stream.search.triggered");
  obs::Counter* drift_holds = obs::GetCounter("stream.search.drift_held");
  obs::Counter* saves = obs::GetCounter("stream.checkpoint.saved");
  obs::Counter* restores = obs::GetCounter("stream.checkpoint.restored");
  obs::Gauge* staleness = obs::GetGauge("stream.topk.staleness_ops");
  obs::Gauge* live = obs::GetGauge("stream.rows.live");
  obs::Histogram* apply_us = obs::GetHistogram("stream.op.apply_us");

  static StreamMetrics& Get() {
    static StreamMetrics metrics;
    return metrics;
  }
};

/// The engine's removal method: FUME hands it dense indices into
/// train_data(); it forwards the corresponding training-store ids to a
/// plain UnlearnRemovalMethod over the streaming forest. Thread-safe like
/// the inner method (the map is read-only during a search).
class MappedUnlearnRemoval : public RemovalMethod {
 public:
  MappedUnlearnRemoval(const DareForest* model, const Dataset* test,
                       const std::vector<RowId>* dense_to_id, GroupSpec group,
                       FairnessMetric metric)
      : inner_(model, test, group, metric), dense_to_id_(dense_to_id) {}

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override {
    return EvaluateWithoutOn(0, rows);
  }
  Result<ModelEval> EvaluateWithoutOn(
      int worker, const std::vector<RowId>& rows) override {
    std::vector<RowId> mapped(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t dense = static_cast<size_t>(rows[i]);
      if (dense >= dense_to_id_->size()) {
        return Status::IndexError("dense row " + std::to_string(rows[i]) +
                                  " out of live range");
      }
      mapped[i] = (*dense_to_id_)[dense];
    }
    return inner_.EvaluateWithoutOn(worker, mapped);
  }
  void BeginParallel(int num_workers) override {
    inner_.BeginParallel(num_workers);
  }
  void EndParallel() override { inner_.EndParallel(); }
  const char* name() const override { return "dare-unlearn-stream"; }

 private:
  UnlearnRemovalMethod inner_;
  const std::vector<RowId>* dense_to_id_;
};

// ---- checkpoint primitives (little-endian native, like forest/serialize).

constexpr char kCkptMagic[8] = {'F', 'U', 'M', 'E', 'S', 'T', 'R', 'M'};
constexpr uint32_t kCkptVersion = 1;

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteSubset(std::ostream& out, const AttributableSubset& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.predicate.num_literals()));
  for (const Literal& lit : s.predicate.literals()) {
    WritePod<int32_t>(out, lit.attr);
    WritePod<uint8_t>(out, static_cast<uint8_t>(lit.op));
    WritePod<int32_t>(out, lit.value);
  }
  WritePod<double>(out, s.support);
  WritePod<int64_t>(out, s.num_rows);
  WritePod<double>(out, s.phi);
  WritePod<double>(out, s.attribution);
  WritePod<double>(out, s.new_fairness);
  WritePod<double>(out, s.new_accuracy);
}

Result<AttributableSubset> ReadSubset(std::istream& in) {
  uint32_t num_literals = 0;
  if (!ReadPod(in, &num_literals) || num_literals > 64) {
    return Status::IOError("checkpoint: bad literal count");
  }
  std::vector<Literal> literals;
  literals.reserve(num_literals);
  for (uint32_t i = 0; i < num_literals; ++i) {
    Literal lit;
    uint8_t op = 0;
    if (!ReadPod(in, &lit.attr) || !ReadPod(in, &op) ||
        !ReadPod(in, &lit.value)) {
      return Status::IOError("checkpoint: truncated literal");
    }
    lit.op = static_cast<LiteralOp>(op);
    literals.push_back(lit);
  }
  AttributableSubset s;
  s.predicate = Predicate(std::move(literals));
  if (!ReadPod(in, &s.support) || !ReadPod(in, &s.num_rows) ||
      !ReadPod(in, &s.phi) || !ReadPod(in, &s.attribution) ||
      !ReadPod(in, &s.new_fairness) || !ReadPod(in, &s.new_accuracy)) {
    return Status::IOError("checkpoint: truncated subset record");
  }
  return s;
}

}  // namespace

bool DriftPolicy::ShouldSearch(double last, double now) const {
  const double drift = std::fabs(now - last);
  if (drift >= abs_threshold) return true;
  const double base = std::fabs(last);
  return base > 0.0 && drift >= rel_threshold * base;
}

StreamEngine::StreamEngine(Dataset test, StreamEngineConfig config)
    : test_(std::move(test)), config_(std::move(config)) {}

Result<StreamEngine> StreamEngine::Create(const Dataset& initial_train,
                                          Dataset test,
                                          StreamEngineConfig config) {
  if (initial_train.num_rows() >
      static_cast<int64_t>(std::numeric_limits<RowId>::max())) {
    return Status::Invalid("initial training set too large for RowId");
  }
  obs::TraceSpan span("stream.engine.create",
                      {{"rows", initial_train.num_rows()}});
  StreamEngine engine(std::move(test), std::move(config));
  FUME_ASSIGN_OR_RETURN(
      engine.forest_, DareForest::Train(initial_train, engine.config_.forest));
  engine.train_data_ = initial_train;
  engine.store_ids_.resize(static_cast<size_t>(initial_train.num_rows()));
  for (int64_t r = 0; r < initial_train.num_rows(); ++r) {
    engine.store_ids_[static_cast<size_t>(r)] = static_cast<RowId>(r);
  }
  engine.RebuildLiveIndex();
  engine.cache_.Rebuild(engine.forest_, engine.test_);
  engine.RefreshMetric();
  FUME_RETURN_NOT_OK(engine.RunSearch());
  return engine;
}

void StreamEngine::RebuildLiveIndex() {
  dense_of_id_.clear();
  dense_of_id_.reserve(store_ids_.size());
  for (size_t dense = 0; dense < store_ids_.size(); ++dense) {
    dense_of_id_[store_ids_[dense]] = static_cast<int64_t>(dense);
  }
}

void StreamEngine::RefreshMetric() {
  const std::vector<int>& preds = cache_.predictions();
  metric_ = ComputeFairness(test_, preds, config_.fume.group,
                            config_.fume.metric);
  int64_t correct = 0;
  for (int64_t r = 0; r < test_.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test_.Label(r)) ++correct;
  }
  accuracy_ = test_.num_rows() == 0
                  ? 0.0
                  : static_cast<double>(correct) /
                        static_cast<double>(test_.num_rows());
}

Status StreamEngine::RunSearch() {
  obs::TraceSpan span("stream.search",
                      {{"staleness", staleness_ops_},
                       {"rows", train_data_.num_rows()}});
  StreamMetrics::Get().searches->Inc();
  metric_at_last_search_ = metric_;
  staleness_ops_ = 0;
  StreamMetrics::Get().staleness->Set(0);
  if (std::fabs(metric_) < config_.fume.min_original_bias) {
    // No violation to explain right now; serve "model is fair".
    explanation_.reset();
    return Status::OK();
  }
  ModelEval original;
  original.fairness = metric_;
  original.accuracy = accuracy_;
  MappedUnlearnRemoval removal(&forest_, &test_, &store_ids_,
                               config_.fume.group, config_.fume.metric);
  // Every search of this engine's lifetime shares one worker pool, created
  // at the first parallel search.
  FumeConfig fume_config = config_.fume;
  if (fume_config.pool == nullptr && fume_config.num_threads > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<util::ThreadPool>(fume_config.num_threads);
    }
    fume_config.pool = pool_.get();
  }
  FUME_ASSIGN_OR_RETURN(
      FumeResult result,
      ExplainWithRemoval(original, train_data_, fume_config, &removal));
  explanation_ = std::move(result);
  return Status::OK();
}

Status StreamEngine::ApplyInsert(const StreamOp& op) {
  if (op.rows.empty()) return Status::Invalid("insert op carries no rows");
  Dataset batch(train_data_.schema());
  for (const StreamRow& row : op.rows) {
    FUME_RETURN_NOT_OK(batch.AppendRow(row.codes, row.label));
  }
  std::vector<DeletionStats> per_tree;
  FUME_ASSIGN_OR_RETURN(std::vector<RowId> new_ids,
                        forest_.AddData(batch, &per_tree, &unlearn_scratch_));
  for (size_t i = 0; i < op.rows.size(); ++i) {
    // Validated above; appending to the mirror cannot fail now.
    FUME_CHECK(train_data_.AppendRow(op.rows[i].codes, op.rows[i].label).ok());
    dense_of_id_[new_ids[i]] =
        static_cast<int64_t>(store_ids_.size());
    store_ids_.push_back(new_ids[i]);
  }
  // Addition rebuilds absorbed leaves *in place* (same node address, fresh
  // children), so cached pointers stay valid and the cache resumes each
  // row's descent from them. A re-walk from the root is forced when a
  // subtree retrain freed nodes, or when CoW unsharing (a live snapshot
  // clone held the nodes) rerouted the mutation into fresh copies while
  // the cached pointers still reference the untouched originals.
  std::vector<bool> dirty(per_tree.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] =
        per_tree[t].subtrees_retrained > 0 || per_tree[t].nodes_copied > 0;
  }
  // An insert is a flush boundary: AddData flushed any pending tags first
  // (its per_tree report already carries those retrains), so fold in the
  // dirtiness accumulated by the deferred deletes themselves and resume
  // exact per-op metrics.
  if (!lazy_dirty_.empty()) {
    FUME_CHECK_EQ(lazy_dirty_.size(), dirty.size());
    for (size_t t = 0; t < dirty.size(); ++t) {
      if (lazy_dirty_[t]) dirty[t] = true;
    }
    lazy_dirty_.assign(lazy_dirty_.size(), false);
  }
  metric_stale_ = false;
  cache_.Update(forest_, test_, dirty);
  StreamMetrics::Get().inserts->Inc();
  StreamMetrics::Get().rows_added->Inc(static_cast<int64_t>(op.rows.size()));
  return Status::OK();
}

Status StreamEngine::ApplyDelete(const StreamOp& op) {
  if (op.row_ids.empty()) return Status::Invalid("delete op carries no ids");
  std::vector<int64_t> dense_rows;
  dense_rows.reserve(op.row_ids.size());
  for (RowId id : op.row_ids) {
    auto it = dense_of_id_.find(id);
    if (it == dense_of_id_.end()) {
      return Status::KeyError("row id " + std::to_string(id) +
                              " is not live (never inserted, or already "
                              "deleted)");
    }
    dense_rows.push_back(it->second);
  }
  std::vector<DeletionStats> per_tree;
  FUME_RETURN_NOT_OK(
      forest_.DeleteRows(op.row_ids, &per_tree, &unlearn_scratch_));
  train_data_ = train_data_.DropRows(dense_rows);
  // Drop the same dense positions from the id map, preserving order.
  std::vector<bool> doomed(store_ids_.size(), false);
  for (int64_t dense : dense_rows) doomed[static_cast<size_t>(dense)] = true;
  size_t kept = 0;
  for (size_t dense = 0; dense < store_ids_.size(); ++dense) {
    if (!doomed[dense]) store_ids_[kept++] = store_ids_[dense];
  }
  store_ids_.resize(kept);
  RebuildLiveIndex();
  // Deletion mutates statistics strictly in place unless a subtree
  // retrained; leaves stay leaves, so cached pointers survive. As above,
  // CoW unsharing also invalidates cached pointers: the mutation lands in
  // fresh private copies while the cache still points at the shared
  // originals a snapshot clone keeps alive.
  std::vector<bool> dirty(per_tree.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] =
        per_tree[t].subtrees_retrained > 0 || per_tree[t].nodes_copied > 0;
  }
  if (config_.forest.lazy_unlearn) {
    // Deferred burst: the forest parked retrain-triggering deletes under
    // lazy tags (a budget overflow may already have flushed them — its
    // retrains are in per_tree either way). Accumulate the dirtiness and
    // leave the cache and metric describing the pre-burst model until the
    // next flush boundary (insert, checkpoint, FlushLazy).
    lazy_dirty_.resize(dirty.size(), false);
    for (size_t t = 0; t < dirty.size(); ++t) {
      if (dirty[t]) lazy_dirty_[t] = true;
    }
    metric_stale_ = true;
    StreamMetrics::Get().deletes->Inc();
    StreamMetrics::Get().rows_deleted->Inc(
        static_cast<int64_t>(op.row_ids.size()));
    return Status::OK();
  }
  cache_.Update(forest_, test_, dirty);
  StreamMetrics::Get().deletes->Inc();
  StreamMetrics::Get().rows_deleted->Inc(
      static_cast<int64_t>(op.row_ids.size()));
  return Status::OK();
}

Result<OpOutcome> StreamEngine::Apply(const StreamOp& op) {
  if (op.seq <= last_seq_) {
    return Status::Invalid("op seq " + std::to_string(op.seq) +
                           " is not past the engine's last applied seq " +
                           std::to_string(last_seq_));
  }
  StreamMetrics& metrics = StreamMetrics::Get();
  obs::TraceSpan span("stream.apply",
                      {{"seq", op.seq},
                       {"kind", static_cast<int64_t>(op.kind)}});
  Stopwatch apply_watch;
  OpOutcome outcome;
  outcome.seq = op.seq;
  outcome.kind = op.kind;

  bool model_changed = false;
  switch (op.kind) {
    case OpKind::kInsert:
      FUME_RETURN_NOT_OK(ApplyInsert(op));
      model_changed = true;
      break;
    case OpKind::kDelete:
      FUME_RETURN_NOT_OK(ApplyDelete(op));
      model_changed = true;
      break;
    case OpKind::kCheckpoint:
      metrics.checkpoints->Inc();
      // A checkpoint op is a flush boundary: retire any deferred burst so
      // the searched/persisted state is exact.
      FlushLazy();
      break;
  }
  last_seq_ = op.seq;
  if (model_changed) {
    // While a deferred burst is pending the cache still describes the
    // pre-burst model; the metric refreshes at the next flush boundary.
    if (!metric_stale_) RefreshMetric();
    ++staleness_ops_;
  }
  outcome.apply_seconds = apply_watch.ElapsedSeconds();

  // Drift policy: checkpoints refresh whenever stale (so the persisted
  // explanation is current); data ops re-search only past the thresholds.
  // Deferred bursts suspend drift gating — the metric is stale, so drift
  // against it is meaningless; it is re-evaluated at flush points only.
  bool want_search = false;
  if (op.kind == OpKind::kCheckpoint) {
    want_search = config_.search_on_checkpoint && staleness_ops_ > 0;
  } else if (!metric_stale_) {
    want_search =
        config_.drift.ShouldSearch(metric_at_last_search_, metric_);
  }
  if (want_search) {
    Stopwatch search_watch;
    FUME_RETURN_NOT_OK(RunSearch());
    outcome.searched = true;
    outcome.search_seconds = search_watch.ElapsedSeconds();
  } else if (model_changed) {
    metrics.drift_holds->Inc();
  }

  if (op.kind == OpKind::kCheckpoint && !config_.checkpoint_path.empty()) {
    FUME_RETURN_NOT_OK(SaveCheckpointToFile(config_.checkpoint_path));
  }

  metrics.ops->Inc();
  metrics.staleness->Set(staleness_ops_);
  metrics.live->Set(rows_live());
  metrics.apply_us->Record(
      static_cast<int64_t>(apply_watch.ElapsedSeconds() * 1e6));
  outcome.metric = metric_;
  outcome.accuracy = accuracy_;
  outcome.rows_live = rows_live();
  outcome.staleness_ops = staleness_ops_;
  return outcome;
}

Result<std::vector<OpOutcome>> StreamEngine::Replay(
    const std::vector<StreamOp>& ops) {
  std::vector<OpOutcome> outcomes;
  outcomes.reserve(ops.size());
  for (const StreamOp& op : ops) {
    FUME_ASSIGN_OR_RETURN(OpOutcome outcome, Apply(op));
    outcomes.push_back(outcome);
  }
  return outcomes;
}

void StreamEngine::FlushLazy() {
  if (!metric_stale_ && !forest_.HasLazyTags()) return;
  obs::TraceSpan span("stream.lazy_flush",
                      {{"rows", forest_.lazy_rows()},
                       {"nodes", forest_.lazy_nodes()}});
  std::vector<DeletionStats> per_tree;
  forest_.FlushAll(&per_tree, &unlearn_scratch_);
  // Rewalk trees the flush retrained OR the deferred deletes dirtied
  // (CoW unshares / leaf removals) — everything else resumes in place.
  // per_tree stays empty when a budget overflow inside DeleteRows already
  // retired every tag (FlushAll is then a no-op) — the metric is still
  // stale and lazy_dirty_ carries that burst's dirtiness below.
  std::vector<bool> dirty(static_cast<size_t>(forest_.num_trees()), false);
  FUME_CHECK(per_tree.empty() || per_tree.size() == dirty.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] =
        per_tree[t].subtrees_retrained > 0 || per_tree[t].nodes_copied > 0;
  }
  if (!lazy_dirty_.empty()) {
    FUME_CHECK_EQ(lazy_dirty_.size(), dirty.size());
    for (size_t t = 0; t < dirty.size(); ++t) {
      if (lazy_dirty_[t]) dirty[t] = true;
    }
    lazy_dirty_.assign(lazy_dirty_.size(), false);
  }
  cache_.Update(forest_, test_, dirty);
  metric_stale_ = false;
  RefreshMetric();
}

Status StreamEngine::SaveCheckpoint(std::ostream& out) const {
  obs::TraceSpan span("stream.checkpoint.save", {{"seq", last_seq_}});
  // Checkpoints never persist a deferred burst: Restore recomputes the
  // metric from a fresh cache and verifies it against the saved value, so
  // the state written here must be flush-exact. The const_cast mirrors
  // DareForest::EnsureFlushed — a deferring engine is thread-confined
  // (serve holds the writer lock around checkpoints).
  const_cast<StreamEngine*>(this)->FlushLazy();
  out.write(kCkptMagic, sizeof(kCkptMagic));
  WritePod<uint32_t>(out, kCkptVersion);
  WritePod<int64_t>(out, last_seq_);
  WritePod<double>(out, metric_);
  WritePod<double>(out, accuracy_);
  WritePod<double>(out, metric_at_last_search_);
  WritePod<int64_t>(out, staleness_ops_);
  WritePod<uint64_t>(out, store_ids_.size());
  if (!store_ids_.empty()) {
    out.write(reinterpret_cast<const char*>(store_ids_.data()),
              static_cast<std::streamsize>(store_ids_.size() *
                                           sizeof(RowId)));
  }
  WritePod<uint8_t>(out, explanation_.has_value() ? 1 : 0);
  if (explanation_.has_value()) {
    WritePod<double>(out, explanation_->original_fairness);
    WritePod<double>(out, explanation_->original_accuracy);
    WritePod<uint32_t>(out,
                       static_cast<uint32_t>(explanation_->top_k.size()));
    for (const AttributableSubset& s : explanation_->top_k) {
      WriteSubset(out, s);
    }
  }
  FUME_RETURN_NOT_OK(SaveForest(forest_, out));
  if (!out) return Status::IOError("checkpoint write failed");
  StreamMetrics::Get().saves->Inc();
  return Status::OK();
}

Status StreamEngine::SaveCheckpointToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return SaveCheckpoint(out);
}

Result<StreamEngine> StreamEngine::Restore(std::istream& in,
                                           const Schema& schema, Dataset test,
                                           StreamEngineConfig config) {
  obs::TraceSpan span("stream.restore");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::IOError("not a FUME stream checkpoint (bad magic)");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kCkptVersion) {
    return Status::IOError("unsupported stream checkpoint version");
  }
  StreamEngine engine(std::move(test), std::move(config));
  double saved_metric = 0.0;
  double saved_accuracy = 0.0;
  if (!ReadPod(in, &engine.last_seq_) || !ReadPod(in, &saved_metric) ||
      !ReadPod(in, &saved_accuracy) ||
      !ReadPod(in, &engine.metric_at_last_search_) ||
      !ReadPod(in, &engine.staleness_ops_)) {
    return Status::IOError("checkpoint: truncated engine state");
  }
  uint64_t num_live = 0;
  if (!ReadPod(in, &num_live) || num_live > (1ull << 30)) {
    return Status::IOError("checkpoint: bad live-row count");
  }
  engine.store_ids_.resize(num_live);
  if (num_live > 0) {
    in.read(reinterpret_cast<char*>(engine.store_ids_.data()),
            static_cast<std::streamsize>(num_live * sizeof(RowId)));
  }
  uint8_t has_explanation = 0;
  if (!in || !ReadPod(in, &has_explanation)) {
    return Status::IOError("checkpoint: truncated live-id block");
  }
  if (has_explanation != 0) {
    FumeResult cached;
    uint32_t k = 0;
    if (!ReadPod(in, &cached.original_fairness) ||
        !ReadPod(in, &cached.original_accuracy) || !ReadPod(in, &k) ||
        k > 100000) {
      return Status::IOError("checkpoint: truncated explanation header");
    }
    cached.top_k.reserve(k);
    for (uint32_t i = 0; i < k; ++i) {
      FUME_ASSIGN_OR_RETURN(AttributableSubset s, ReadSubset(in));
      cached.top_k.push_back(std::move(s));
    }
    engine.explanation_ = std::move(cached);
  }
  FUME_ASSIGN_OR_RETURN(engine.forest_, LoadForest(in));

  // Reassemble the dense training mirror from the store and the live-id
  // map, then verify the checkpoint is self-consistent.
  if (!schema.AllCategorical() ||
      schema.num_attributes() != engine.forest_.store().num_attrs()) {
    return Status::Invalid("restore schema does not match checkpoint store");
  }
  for (int j = 0; j < schema.num_attributes(); ++j) {
    if (schema.attribute(j).cardinality() !=
        engine.forest_.store().cardinality(j)) {
      return Status::Invalid("restore schema cardinality mismatch at '" +
                             schema.attribute(j).name + "'");
    }
  }
  const TrainingStore& store = engine.forest_.store();
  engine.train_data_ = Dataset(schema);
  std::vector<int32_t> codes(static_cast<size_t>(store.num_attrs()));
  for (RowId id : engine.store_ids_) {
    if (id < 0 || id >= store.num_rows()) {
      return Status::IOError("checkpoint: live id out of store range");
    }
    for (int j = 0; j < store.num_attrs(); ++j) {
      codes[static_cast<size_t>(j)] = store.code(id, j);
    }
    FUME_RETURN_NOT_OK(engine.train_data_.AppendRow(codes, store.label(id)));
  }
  if (engine.train_data_.num_rows() != engine.forest_.num_training_rows()) {
    return Status::IOError("checkpoint: live ids disagree with forest");
  }
  engine.RebuildLiveIndex();
  if (engine.dense_of_id_.size() != engine.store_ids_.size()) {
    return Status::IOError("checkpoint: duplicate live ids");
  }
  engine.cache_.Rebuild(engine.forest_, engine.test_);
  engine.RefreshMetric();
  if (engine.metric_ != saved_metric || engine.accuracy_ != saved_accuracy) {
    return Status::IOError(
        "checkpoint: recomputed metric disagrees with saved state (corrupt "
        "file, or different test data / config)");
  }
  StreamMetrics::Get().restores->Inc();
  return engine;
}

Result<StreamEngine> StreamEngine::RestoreFromFile(
    const std::string& path, const Schema& schema, Dataset test,
    StreamEngineConfig config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return Restore(in, schema, std::move(test), std::move(config));
}

}  // namespace stream
}  // namespace fume
