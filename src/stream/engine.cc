#include "stream/engine.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "forest/serialize.h"

#include "core/removal_method.h"
#include "core/sharded_removal.h"
#include "fairness/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace fume {
namespace stream {

namespace {

// ---- obs shorthands (docs/observability.md naming scheme).
struct StreamMetrics {
  obs::Counter* ops = obs::GetCounter("stream.ops.applied");
  obs::Counter* inserts = obs::GetCounter("stream.ops.inserts");
  obs::Counter* deletes = obs::GetCounter("stream.ops.deletes");
  obs::Counter* checkpoints = obs::GetCounter("stream.ops.checkpoints");
  obs::Counter* rows_added = obs::GetCounter("stream.rows.inserted");
  obs::Counter* rows_deleted = obs::GetCounter("stream.rows.deleted");
  obs::Counter* searches = obs::GetCounter("stream.search.triggered");
  obs::Counter* drift_holds = obs::GetCounter("stream.search.drift_held");
  obs::Counter* saves = obs::GetCounter("stream.checkpoint.saved");
  obs::Counter* restores = obs::GetCounter("stream.checkpoint.restored");
  obs::Gauge* staleness = obs::GetGauge("stream.topk.staleness_ops");
  obs::Gauge* live = obs::GetGauge("stream.rows.live");
  obs::Histogram* apply_us = obs::GetHistogram("stream.op.apply_us");

  static StreamMetrics& Get() {
    static StreamMetrics metrics;
    return metrics;
  }
};

/// The engine's removal method: FUME hands it dense indices into
/// train_data(); it forwards the corresponding engine ids (training-store
/// ids, or global ids on the sharded path) to the wrapped unlearning
/// method over the streaming model. Thread-safe like the inner method
/// (the map is read-only during a search).
class MappedRemoval : public RemovalMethod {
 public:
  MappedRemoval(RemovalMethod* inner, const char* name,
                const std::vector<RowId>* dense_to_id)
      : inner_(inner), name_(name), dense_to_id_(dense_to_id) {}

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override {
    return EvaluateWithoutOn(0, rows);
  }
  Result<ModelEval> EvaluateWithoutOn(
      int worker, const std::vector<RowId>& rows) override {
    std::vector<RowId> mapped(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t dense = static_cast<size_t>(rows[i]);
      if (dense >= dense_to_id_->size()) {
        return Status::IndexError("dense row " + std::to_string(rows[i]) +
                                  " out of live range");
      }
      mapped[i] = (*dense_to_id_)[dense];
    }
    return inner_->EvaluateWithoutOn(worker, mapped);
  }
  void BeginParallel(int num_workers) override {
    inner_->BeginParallel(num_workers);
  }
  void EndParallel() override { inner_->EndParallel(); }
  const char* name() const override { return name_; }

 private:
  RemovalMethod* inner_;
  const char* name_;
  const std::vector<RowId>* dense_to_id_;
};

// ---- checkpoint primitives (little-endian native, like forest/serialize).

constexpr char kCkptMagic[8] = {'F', 'U', 'M', 'E', 'S', 'T', 'R', 'M'};
/// v1: engine state + one monolithic SaveForest blob. v2: identical engine
/// state block, then a ShardedForest container (shard config + placement
/// maps + one independent forest blob per shard) instead of the single
/// forest — written incrementally, re-serializing only dirty shards.
constexpr uint32_t kCkptVersion = 1;
constexpr uint32_t kCkptVersionSharded = 2;

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteSubset(std::ostream& out, const AttributableSubset& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.predicate.num_literals()));
  for (const Literal& lit : s.predicate.literals()) {
    WritePod<int32_t>(out, lit.attr);
    WritePod<uint8_t>(out, static_cast<uint8_t>(lit.op));
    WritePod<int32_t>(out, lit.value);
  }
  WritePod<double>(out, s.support);
  WritePod<int64_t>(out, s.num_rows);
  WritePod<double>(out, s.phi);
  WritePod<double>(out, s.attribution);
  WritePod<double>(out, s.new_fairness);
  WritePod<double>(out, s.new_accuracy);
}

Result<AttributableSubset> ReadSubset(std::istream& in) {
  uint32_t num_literals = 0;
  if (!ReadPod(in, &num_literals) || num_literals > 64) {
    return Status::IOError("checkpoint: bad literal count");
  }
  std::vector<Literal> literals;
  literals.reserve(num_literals);
  for (uint32_t i = 0; i < num_literals; ++i) {
    Literal lit;
    uint8_t op = 0;
    if (!ReadPod(in, &lit.attr) || !ReadPod(in, &op) ||
        !ReadPod(in, &lit.value)) {
      return Status::IOError("checkpoint: truncated literal");
    }
    lit.op = static_cast<LiteralOp>(op);
    literals.push_back(lit);
  }
  AttributableSubset s;
  s.predicate = Predicate(std::move(literals));
  if (!ReadPod(in, &s.support) || !ReadPod(in, &s.num_rows) ||
      !ReadPod(in, &s.phi) || !ReadPod(in, &s.attribution) ||
      !ReadPod(in, &s.new_fairness) || !ReadPod(in, &s.new_accuracy)) {
    return Status::IOError("checkpoint: truncated subset record");
  }
  return s;
}

}  // namespace

bool DriftPolicy::ShouldSearch(double last, double now) const {
  const double drift = std::fabs(now - last);
  if (drift >= abs_threshold) return true;
  const double base = std::fabs(last);
  return base > 0.0 && drift >= rel_threshold * base;
}

StreamEngine::StreamEngine(Dataset test, StreamEngineConfig config)
    : test_(std::move(test)), config_(std::move(config)) {}

Result<StreamEngine> StreamEngine::Create(const Dataset& initial_train,
                                          Dataset test,
                                          StreamEngineConfig config) {
  if (initial_train.num_rows() >
      static_cast<int64_t>(std::numeric_limits<RowId>::max())) {
    return Status::Invalid("initial training set too large for RowId");
  }
  obs::TraceSpan span("stream.engine.create",
                      {{"rows", initial_train.num_rows()}});
  StreamEngine engine(std::move(test), std::move(config));
  if (engine.config_.shard.num_shards > 1) {
    FUME_ASSIGN_OR_RETURN(
        ShardedForest sharded,
        ShardedForest::Train(initial_train, engine.config_.forest,
                             engine.config_.shard, engine.MaybePool()));
    engine.sharded_.emplace(std::move(sharded));
    engine.ckpt_dirty_.assign(
        static_cast<size_t>(engine.sharded_->num_shards()), true);
  } else {
    FUME_ASSIGN_OR_RETURN(engine.forest_, DareForest::Train(
                                              initial_train,
                                              engine.config_.forest));
  }
  engine.train_data_ = initial_train;
  engine.store_ids_.resize(static_cast<size_t>(initial_train.num_rows()));
  for (int64_t r = 0; r < initial_train.num_rows(); ++r) {
    engine.store_ids_[static_cast<size_t>(r)] = static_cast<RowId>(r);
  }
  engine.RebuildLiveIndex();
  if (engine.sharded_.has_value()) {
    engine.shard_cache_.Rebuild(*engine.sharded_, engine.test_);
  } else {
    engine.cache_.Rebuild(engine.forest_, engine.test_);
  }
  engine.RefreshMetric();
  FUME_RETURN_NOT_OK(engine.RunSearch());
  return engine;
}

util::ThreadPool* StreamEngine::MaybePool() {
  if (config_.fume.num_threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(config_.fume.num_threads);
  }
  return pool_.get();
}

std::vector<std::vector<bool>> StreamEngine::FoldShardDirty(
    const std::vector<std::vector<DeletionStats>>& per_shard) {
  const size_t n = per_shard.size();
  std::vector<std::vector<bool>> dirty(n);
  shard_lazy_dirty_.resize(n);
  if (ckpt_dirty_.size() < n) ckpt_dirty_.resize(n, true);
  for (size_t s = 0; s < n; ++s) {
    const auto& per_tree = per_shard[s];
    if (!per_tree.empty()) {
      // The op touched this shard: its serialized bytes changed (store
      // rows and/or node stats), so the next incremental checkpoint must
      // re-serialize it even if no tree needs a cache re-walk.
      ckpt_dirty_[s] = true;
      dirty[s].assign(per_tree.size(), false);
      for (size_t t = 0; t < per_tree.size(); ++t) {
        dirty[s][t] = per_tree[t].subtrees_retrained > 0 ||
                      per_tree[t].nodes_copied > 0;
      }
    }
    auto& lazy = shard_lazy_dirty_[s];
    if (!lazy.empty()) {
      if (dirty[s].empty()) dirty[s].assign(lazy.size(), false);
      FUME_CHECK_EQ(lazy.size(), dirty[s].size());
      for (size_t t = 0; t < lazy.size(); ++t) {
        if (lazy[t]) dirty[s][t] = true;
      }
      lazy.clear();
    }
  }
  return dirty;
}

void StreamEngine::RebuildLiveIndex() {
  dense_of_id_.clear();
  dense_of_id_.reserve(store_ids_.size());
  for (size_t dense = 0; dense < store_ids_.size(); ++dense) {
    dense_of_id_[store_ids_[dense]] = static_cast<int64_t>(dense);
  }
}

void StreamEngine::RefreshMetric() {
  const std::vector<int>& preds = sharded_.has_value()
                                      ? shard_cache_.predictions()
                                      : cache_.predictions();
  metric_ = ComputeFairness(test_, preds, config_.fume.group,
                            config_.fume.metric);
  int64_t correct = 0;
  for (int64_t r = 0; r < test_.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test_.Label(r)) ++correct;
  }
  accuracy_ = test_.num_rows() == 0
                  ? 0.0
                  : static_cast<double>(correct) /
                        static_cast<double>(test_.num_rows());
}

Status StreamEngine::RunSearch() {
  obs::TraceSpan span("stream.search",
                      {{"staleness", staleness_ops_},
                       {"rows", train_data_.num_rows()}});
  StreamMetrics::Get().searches->Inc();
  metric_at_last_search_ = metric_;
  staleness_ops_ = 0;
  StreamMetrics::Get().staleness->Set(0);
  if (std::fabs(metric_) < config_.fume.min_original_bias) {
    // No violation to explain right now; serve "model is fair".
    explanation_.reset();
    return Status::OK();
  }
  ModelEval original;
  original.fairness = metric_;
  original.accuracy = accuracy_;
  // Sharded engines evaluate leave-outs shard-locally through the warm
  // per-shard cache; monolithic engines keep the original method.
  std::optional<UnlearnRemovalMethod> mono;
  std::optional<ShardedRemovalMethod> shard;
  RemovalMethod* inner = nullptr;
  const char* name = "dare-unlearn-stream";
  if (sharded_.has_value()) {
    shard.emplace(&*sharded_, &test_, config_.fume.group, config_.fume.metric,
                  ShardedRemovalMethod::Options{}, &shard_cache_);
    inner = &*shard;
    name = "dare-unlearn-sharded-stream";
  } else {
    mono.emplace(&forest_, &test_, config_.fume.group, config_.fume.metric);
    inner = &*mono;
  }
  MappedRemoval removal(inner, name, &store_ids_);
  // Every search of this engine's lifetime shares one worker pool, created
  // at the first parallel search.
  FumeConfig fume_config = config_.fume;
  if (fume_config.pool == nullptr && fume_config.num_threads > 1) {
    fume_config.pool = MaybePool();
  }
  FUME_ASSIGN_OR_RETURN(
      FumeResult result,
      ExplainWithRemoval(original, train_data_, fume_config, &removal));
  explanation_ = std::move(result);
  return Status::OK();
}

Status StreamEngine::ApplyInsert(const StreamOp& op) {
  if (op.rows.empty()) return Status::Invalid("insert op carries no rows");
  Dataset batch(train_data_.schema());
  for (const StreamRow& row : op.rows) {
    FUME_RETURN_NOT_OK(batch.AppendRow(row.codes, row.label));
  }
  std::vector<DeletionStats> per_tree;
  std::vector<std::vector<DeletionStats>> per_shard;
  std::vector<RowId> new_ids;
  if (sharded_.has_value()) {
    FUME_ASSIGN_OR_RETURN(new_ids, sharded_->AddData(batch, &per_shard,
                                                     MaybePool(),
                                                     &shard_scratch_));
  } else {
    FUME_ASSIGN_OR_RETURN(
        new_ids, forest_.AddData(batch, &per_tree, &unlearn_scratch_));
  }
  for (size_t i = 0; i < op.rows.size(); ++i) {
    // Validated above; appending to the mirror cannot fail now.
    FUME_CHECK(train_data_.AppendRow(op.rows[i].codes, op.rows[i].label).ok());
    dense_of_id_[new_ids[i]] =
        static_cast<int64_t>(store_ids_.size());
    store_ids_.push_back(new_ids[i]);
  }
  if (sharded_.has_value()) {
    // Same flush-boundary contract as the monolithic branch below: AddData
    // flushed every pending tag (per-shard reports carry those retrains),
    // so fold the deferred-burst dirtiness and resume exact metrics.
    const std::vector<std::vector<bool>> shard_dirty =
        FoldShardDirty(per_shard);
    metric_stale_ = false;
    shard_cache_.Update(*sharded_, test_, shard_dirty);
    StreamMetrics::Get().inserts->Inc();
    StreamMetrics::Get().rows_added->Inc(
        static_cast<int64_t>(op.rows.size()));
    return Status::OK();
  }
  // Addition rebuilds absorbed leaves *in place* (same node address, fresh
  // children), so cached pointers stay valid and the cache resumes each
  // row's descent from them. A re-walk from the root is forced when a
  // subtree retrain freed nodes, or when CoW unsharing (a live snapshot
  // clone held the nodes) rerouted the mutation into fresh copies while
  // the cached pointers still reference the untouched originals.
  std::vector<bool> dirty(per_tree.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] =
        per_tree[t].subtrees_retrained > 0 || per_tree[t].nodes_copied > 0;
  }
  // An insert is a flush boundary: AddData flushed any pending tags first
  // (its per_tree report already carries those retrains), so fold in the
  // dirtiness accumulated by the deferred deletes themselves and resume
  // exact per-op metrics.
  if (!lazy_dirty_.empty()) {
    FUME_CHECK_EQ(lazy_dirty_.size(), dirty.size());
    for (size_t t = 0; t < dirty.size(); ++t) {
      if (lazy_dirty_[t]) dirty[t] = true;
    }
    lazy_dirty_.assign(lazy_dirty_.size(), false);
  }
  metric_stale_ = false;
  cache_.Update(forest_, test_, dirty);
  StreamMetrics::Get().inserts->Inc();
  StreamMetrics::Get().rows_added->Inc(static_cast<int64_t>(op.rows.size()));
  return Status::OK();
}

Status StreamEngine::ApplyDelete(const StreamOp& op) {
  if (op.row_ids.empty()) return Status::Invalid("delete op carries no ids");
  std::vector<int64_t> dense_rows;
  dense_rows.reserve(op.row_ids.size());
  for (RowId id : op.row_ids) {
    auto it = dense_of_id_.find(id);
    if (it == dense_of_id_.end()) {
      return Status::KeyError("row id " + std::to_string(id) +
                              " is not live (never inserted, or already "
                              "deleted)");
    }
    dense_rows.push_back(it->second);
  }
  std::vector<DeletionStats> per_tree;
  std::vector<std::vector<DeletionStats>> per_shard;
  if (sharded_.has_value()) {
    FUME_RETURN_NOT_OK(sharded_->DeleteRows(op.row_ids, &per_shard,
                                            MaybePool(), &shard_scratch_));
  } else {
    FUME_RETURN_NOT_OK(
        forest_.DeleteRows(op.row_ids, &per_tree, &unlearn_scratch_));
  }
  train_data_ = train_data_.DropRows(dense_rows);
  // Drop the same dense positions from the id map, preserving order.
  std::vector<bool> doomed(store_ids_.size(), false);
  for (int64_t dense : dense_rows) doomed[static_cast<size_t>(dense)] = true;
  size_t kept = 0;
  for (size_t dense = 0; dense < store_ids_.size(); ++dense) {
    if (!doomed[dense]) store_ids_[kept++] = store_ids_[dense];
  }
  store_ids_.resize(kept);
  RebuildLiveIndex();
  if (sharded_.has_value()) {
    if (config_.forest.lazy_unlearn) {
      // Deferred burst (see the monolithic branch below): accumulate each
      // touched shard's per-tree dirtiness and mark it dirty for the next
      // incremental checkpoint; the cache and metric keep describing the
      // pre-burst model until the next flush boundary.
      shard_lazy_dirty_.resize(per_shard.size());
      if (ckpt_dirty_.size() < per_shard.size()) {
        ckpt_dirty_.resize(per_shard.size(), true);
      }
      for (size_t s = 0; s < per_shard.size(); ++s) {
        const auto& shard_trees = per_shard[s];
        if (shard_trees.empty()) continue;
        ckpt_dirty_[s] = true;
        auto& lazy = shard_lazy_dirty_[s];
        lazy.resize(shard_trees.size(), false);
        for (size_t t = 0; t < shard_trees.size(); ++t) {
          if (shard_trees[t].subtrees_retrained > 0 ||
              shard_trees[t].nodes_copied > 0) {
            lazy[t] = true;
          }
        }
      }
      metric_stale_ = true;
    } else {
      shard_cache_.Update(*sharded_, test_, FoldShardDirty(per_shard));
    }
    StreamMetrics::Get().deletes->Inc();
    StreamMetrics::Get().rows_deleted->Inc(
        static_cast<int64_t>(op.row_ids.size()));
    return Status::OK();
  }
  // Deletion mutates statistics strictly in place unless a subtree
  // retrained; leaves stay leaves, so cached pointers survive. As above,
  // CoW unsharing also invalidates cached pointers: the mutation lands in
  // fresh private copies while the cache still points at the shared
  // originals a snapshot clone keeps alive.
  std::vector<bool> dirty(per_tree.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] =
        per_tree[t].subtrees_retrained > 0 || per_tree[t].nodes_copied > 0;
  }
  if (config_.forest.lazy_unlearn) {
    // Deferred burst: the forest parked retrain-triggering deletes under
    // lazy tags (a budget overflow may already have flushed them — its
    // retrains are in per_tree either way). Accumulate the dirtiness and
    // leave the cache and metric describing the pre-burst model until the
    // next flush boundary (insert, checkpoint, FlushLazy).
    lazy_dirty_.resize(dirty.size(), false);
    for (size_t t = 0; t < dirty.size(); ++t) {
      if (dirty[t]) lazy_dirty_[t] = true;
    }
    metric_stale_ = true;
    StreamMetrics::Get().deletes->Inc();
    StreamMetrics::Get().rows_deleted->Inc(
        static_cast<int64_t>(op.row_ids.size()));
    return Status::OK();
  }
  cache_.Update(forest_, test_, dirty);
  StreamMetrics::Get().deletes->Inc();
  StreamMetrics::Get().rows_deleted->Inc(
      static_cast<int64_t>(op.row_ids.size()));
  return Status::OK();
}

Result<OpOutcome> StreamEngine::Apply(const StreamOp& op) {
  if (op.seq <= last_seq_) {
    return Status::Invalid("op seq " + std::to_string(op.seq) +
                           " is not past the engine's last applied seq " +
                           std::to_string(last_seq_));
  }
  StreamMetrics& metrics = StreamMetrics::Get();
  obs::TraceSpan span("stream.apply",
                      {{"seq", op.seq},
                       {"kind", static_cast<int64_t>(op.kind)}});
  Stopwatch apply_watch;
  OpOutcome outcome;
  outcome.seq = op.seq;
  outcome.kind = op.kind;

  bool model_changed = false;
  switch (op.kind) {
    case OpKind::kInsert:
      FUME_RETURN_NOT_OK(ApplyInsert(op));
      model_changed = true;
      break;
    case OpKind::kDelete:
      FUME_RETURN_NOT_OK(ApplyDelete(op));
      model_changed = true;
      break;
    case OpKind::kCheckpoint:
      metrics.checkpoints->Inc();
      // A checkpoint op is a flush boundary: retire any deferred burst so
      // the searched/persisted state is exact.
      FlushLazy();
      break;
  }
  last_seq_ = op.seq;
  if (model_changed) {
    // While a deferred burst is pending the cache still describes the
    // pre-burst model; the metric refreshes at the next flush boundary.
    if (!metric_stale_) RefreshMetric();
    ++staleness_ops_;
  }
  outcome.apply_seconds = apply_watch.ElapsedSeconds();

  // Drift policy: checkpoints refresh whenever stale (so the persisted
  // explanation is current); data ops re-search only past the thresholds.
  // Deferred bursts suspend drift gating — the metric is stale, so drift
  // against it is meaningless; it is re-evaluated at flush points only.
  bool want_search = false;
  if (op.kind == OpKind::kCheckpoint) {
    want_search = config_.search_on_checkpoint && staleness_ops_ > 0;
  } else if (!metric_stale_) {
    want_search =
        config_.drift.ShouldSearch(metric_at_last_search_, metric_);
  }
  if (want_search) {
    Stopwatch search_watch;
    FUME_RETURN_NOT_OK(RunSearch());
    outcome.searched = true;
    outcome.search_seconds = search_watch.ElapsedSeconds();
  } else if (model_changed) {
    metrics.drift_holds->Inc();
  }

  if (op.kind == OpKind::kCheckpoint && !config_.checkpoint_path.empty()) {
    FUME_RETURN_NOT_OK(SaveCheckpointToFile(config_.checkpoint_path));
  }

  metrics.ops->Inc();
  metrics.staleness->Set(staleness_ops_);
  metrics.live->Set(rows_live());
  metrics.apply_us->Record(
      static_cast<int64_t>(apply_watch.ElapsedSeconds() * 1e6));
  outcome.metric = metric_;
  outcome.accuracy = accuracy_;
  outcome.rows_live = rows_live();
  outcome.staleness_ops = staleness_ops_;
  return outcome;
}

Result<std::vector<OpOutcome>> StreamEngine::Replay(
    const std::vector<StreamOp>& ops) {
  std::vector<OpOutcome> outcomes;
  outcomes.reserve(ops.size());
  for (const StreamOp& op : ops) {
    FUME_ASSIGN_OR_RETURN(OpOutcome outcome, Apply(op));
    outcomes.push_back(outcome);
  }
  return outcomes;
}

void StreamEngine::FlushLazy() {
  if (sharded_.has_value()) {
    if (!metric_stale_ && !sharded_->HasLazyTags()) return;
    obs::TraceSpan span("stream.lazy_flush",
                        {{"rows", sharded_->lazy_rows()},
                         {"nodes", sharded_->lazy_nodes()}});
    std::vector<std::vector<DeletionStats>> per_shard;
    sharded_->FlushAll(&per_shard, MaybePool(), &shard_scratch_);
    // FoldShardDirty merges each shard's flush retrains with the dirtiness
    // its deferred deletes accumulated (shard_lazy_dirty_); shards with
    // neither stay untouched in the cache.
    shard_cache_.Update(*sharded_, test_, FoldShardDirty(per_shard));
    metric_stale_ = false;
    RefreshMetric();
    return;
  }
  if (!metric_stale_ && !forest_.HasLazyTags()) return;
  obs::TraceSpan span("stream.lazy_flush",
                      {{"rows", forest_.lazy_rows()},
                       {"nodes", forest_.lazy_nodes()}});
  std::vector<DeletionStats> per_tree;
  forest_.FlushAll(&per_tree, &unlearn_scratch_);
  // Rewalk trees the flush retrained OR the deferred deletes dirtied
  // (CoW unshares / leaf removals) — everything else resumes in place.
  // per_tree stays empty when a budget overflow inside DeleteRows already
  // retired every tag (FlushAll is then a no-op) — the metric is still
  // stale and lazy_dirty_ carries that burst's dirtiness below.
  std::vector<bool> dirty(static_cast<size_t>(forest_.num_trees()), false);
  FUME_CHECK(per_tree.empty() || per_tree.size() == dirty.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] =
        per_tree[t].subtrees_retrained > 0 || per_tree[t].nodes_copied > 0;
  }
  if (!lazy_dirty_.empty()) {
    FUME_CHECK_EQ(lazy_dirty_.size(), dirty.size());
    for (size_t t = 0; t < dirty.size(); ++t) {
      if (lazy_dirty_[t]) dirty[t] = true;
    }
    lazy_dirty_.assign(lazy_dirty_.size(), false);
  }
  cache_.Update(forest_, test_, dirty);
  metric_stale_ = false;
  RefreshMetric();
}

Status StreamEngine::SaveCheckpoint(std::ostream& out) const {
  obs::TraceSpan span("stream.checkpoint.save", {{"seq", last_seq_}});
  // Checkpoints never persist a deferred burst: Restore recomputes the
  // metric from a fresh cache and verifies it against the saved value, so
  // the state written here must be flush-exact. The const_cast mirrors
  // DareForest::EnsureFlushed — a deferring engine is thread-confined
  // (serve holds the writer lock around checkpoints).
  const_cast<StreamEngine*>(this)->FlushLazy();
  out.write(kCkptMagic, sizeof(kCkptMagic));
  WritePod<uint32_t>(out, sharded_.has_value() ? kCkptVersionSharded
                                               : kCkptVersion);
  WritePod<int64_t>(out, last_seq_);
  WritePod<double>(out, metric_);
  WritePod<double>(out, accuracy_);
  WritePod<double>(out, metric_at_last_search_);
  WritePod<int64_t>(out, staleness_ops_);
  WritePod<uint64_t>(out, store_ids_.size());
  if (!store_ids_.empty()) {
    out.write(reinterpret_cast<const char*>(store_ids_.data()),
              static_cast<std::streamsize>(store_ids_.size() *
                                           sizeof(RowId)));
  }
  WritePod<uint8_t>(out, explanation_.has_value() ? 1 : 0);
  if (explanation_.has_value()) {
    WritePod<double>(out, explanation_->original_fairness);
    WritePod<double>(out, explanation_->original_accuracy);
    WritePod<uint32_t>(out,
                       static_cast<uint32_t>(explanation_->top_k.size()));
    for (const AttributableSubset& s : explanation_->top_k) {
      WriteSubset(out, s);
    }
  }
  if (sharded_.has_value()) {
    // Incremental: only shards dirtied since the previous checkpoint are
    // re-serialized; the rest reuse their cached bytes verbatim (counted
    // by shard.checkpoint.* inside SaveWithCache).
    if (ckpt_dirty_.size() <
        static_cast<size_t>(sharded_->num_shards())) {
      ckpt_dirty_.resize(static_cast<size_t>(sharded_->num_shards()), true);
    }
    FUME_RETURN_NOT_OK(
        sharded_->SaveWithCache(out, &ckpt_blobs_, ckpt_dirty_));
    ckpt_dirty_.assign(ckpt_dirty_.size(), false);
  } else {
    FUME_RETURN_NOT_OK(SaveForest(forest_, out));
  }
  if (!out) return Status::IOError("checkpoint write failed");
  StreamMetrics::Get().saves->Inc();
  return Status::OK();
}

Status StreamEngine::SaveCheckpointToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return SaveCheckpoint(out);
}

Result<StreamEngine> StreamEngine::Restore(std::istream& in,
                                           const Schema& schema, Dataset test,
                                           StreamEngineConfig config) {
  obs::TraceSpan span("stream.restore");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::IOError("not a FUME stream checkpoint (bad magic)");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) ||
      (version != kCkptVersion && version != kCkptVersionSharded)) {
    return Status::IOError("unsupported stream checkpoint version");
  }
  StreamEngine engine(std::move(test), std::move(config));
  double saved_metric = 0.0;
  double saved_accuracy = 0.0;
  if (!ReadPod(in, &engine.last_seq_) || !ReadPod(in, &saved_metric) ||
      !ReadPod(in, &saved_accuracy) ||
      !ReadPod(in, &engine.metric_at_last_search_) ||
      !ReadPod(in, &engine.staleness_ops_)) {
    return Status::IOError("checkpoint: truncated engine state");
  }
  uint64_t num_live = 0;
  if (!ReadPod(in, &num_live) || num_live > (1ull << 30)) {
    return Status::IOError("checkpoint: bad live-row count");
  }
  engine.store_ids_.resize(num_live);
  if (num_live > 0) {
    in.read(reinterpret_cast<char*>(engine.store_ids_.data()),
            static_cast<std::streamsize>(num_live * sizeof(RowId)));
  }
  uint8_t has_explanation = 0;
  if (!in || !ReadPod(in, &has_explanation)) {
    return Status::IOError("checkpoint: truncated live-id block");
  }
  if (has_explanation != 0) {
    FumeResult cached;
    uint32_t k = 0;
    if (!ReadPod(in, &cached.original_fairness) ||
        !ReadPod(in, &cached.original_accuracy) || !ReadPod(in, &k) ||
        k > 100000) {
      return Status::IOError("checkpoint: truncated explanation header");
    }
    cached.top_k.reserve(k);
    for (uint32_t i = 0; i < k; ++i) {
      FUME_ASSIGN_OR_RETURN(AttributableSubset s, ReadSubset(in));
      cached.top_k.push_back(std::move(s));
    }
    engine.explanation_ = std::move(cached);
  }
  if (version == kCkptVersionSharded) {
    // A sharded checkpoint must be restored as the same SISA deployment:
    // the persisted routing config is authoritative, and the caller's
    // config must agree so future ops route and vote identically.
    if (engine.config_.shard.num_shards <= 1) {
      return Status::Invalid(
          "sharded checkpoint restored with config.shard.num_shards <= 1");
    }
    FUME_ASSIGN_OR_RETURN(ShardedForest loaded, ShardedForest::Load(in));
    const ShardConfig& saved = loaded.shard_config();
    const ShardConfig& want = engine.config_.shard;
    if (saved.num_shards != want.num_shards ||
        saved.placement != want.placement || saved.vote != want.vote ||
        saved.slice_attr != want.slice_attr ||
        saved.slice_value != want.slice_value ||
        saved.hot_shards != want.hot_shards) {
      return Status::Invalid(
          "checkpoint shard config disagrees with engine config");
    }
    engine.sharded_.emplace(std::move(loaded));
  } else {
    if (engine.config_.shard.num_shards > 1) {
      return Status::Invalid(
          "monolithic checkpoint restored with config.shard.num_shards > 1");
    }
    FUME_ASSIGN_OR_RETURN(engine.forest_, LoadForest(in));
  }

  // Reassemble the dense training mirror from the store and the live-id
  // map, then verify the checkpoint is self-consistent. All shards share
  // one schema (they partition one dataset), so shard 0 speaks for it.
  const TrainingStore& store = engine.sharded_.has_value()
                                   ? engine.sharded_->shard(0).store()
                                   : engine.forest_.store();
  if (!schema.AllCategorical() ||
      schema.num_attributes() != store.num_attrs()) {
    return Status::Invalid("restore schema does not match checkpoint store");
  }
  for (int j = 0; j < schema.num_attributes(); ++j) {
    if (schema.attribute(j).cardinality() != store.cardinality(j)) {
      return Status::Invalid("restore schema cardinality mismatch at '" +
                             schema.attribute(j).name + "'");
    }
  }
  engine.train_data_ = Dataset(schema);
  std::vector<int32_t> codes(static_cast<size_t>(store.num_attrs()));
  if (engine.sharded_.has_value()) {
    const int64_t limit = engine.sharded_->num_global_ids();
    for (RowId id : engine.store_ids_) {
      if (id < 0 || static_cast<int64_t>(id) >= limit) {
        return Status::IOError("checkpoint: live id out of store range");
      }
      for (int j = 0; j < store.num_attrs(); ++j) {
        codes[static_cast<size_t>(j)] = engine.sharded_->Code(id, j);
      }
      FUME_RETURN_NOT_OK(
          engine.train_data_.AppendRow(codes, engine.sharded_->Label(id)));
    }
    if (engine.train_data_.num_rows() !=
        engine.sharded_->num_training_rows()) {
      return Status::IOError("checkpoint: live ids disagree with forest");
    }
  } else {
    for (RowId id : engine.store_ids_) {
      if (id < 0 || id >= store.num_rows()) {
        return Status::IOError("checkpoint: live id out of store range");
      }
      for (int j = 0; j < store.num_attrs(); ++j) {
        codes[static_cast<size_t>(j)] = store.code(id, j);
      }
      FUME_RETURN_NOT_OK(engine.train_data_.AppendRow(codes, store.label(id)));
    }
    if (engine.train_data_.num_rows() != engine.forest_.num_training_rows()) {
      return Status::IOError("checkpoint: live ids disagree with forest");
    }
  }
  engine.RebuildLiveIndex();
  if (engine.dense_of_id_.size() != engine.store_ids_.size()) {
    return Status::IOError("checkpoint: duplicate live ids");
  }
  if (engine.sharded_.has_value()) {
    engine.ckpt_dirty_.assign(
        static_cast<size_t>(engine.sharded_->num_shards()), true);
    engine.shard_cache_.Rebuild(*engine.sharded_, engine.test_);
  } else {
    engine.cache_.Rebuild(engine.forest_, engine.test_);
  }
  engine.RefreshMetric();
  if (engine.metric_ != saved_metric || engine.accuracy_ != saved_accuracy) {
    return Status::IOError(
        "checkpoint: recomputed metric disagrees with saved state (corrupt "
        "file, or different test data / config)");
  }
  StreamMetrics::Get().restores->Inc();
  return engine;
}

Result<StreamEngine> StreamEngine::RestoreFromFile(
    const std::string& path, const Schema& schema, Dataset test,
    StreamEngineConfig config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return Restore(in, schema, std::move(test), std::move(config));
}

}  // namespace stream
}  // namespace fume
