// Per-tree test-set prediction cache for the stream engine.
//
// A DaRE op (add/delete) leaves most trees structurally intact: existing
// nodes keep their addresses and their split decisions; the only events
// that free nodes are counted subtree retrains (DeletionStats::
// subtrees_retrained — a split decision flipped and `*node =
// std::move(*rebuilt)` replaced the subtree, dangling its descendants).
// This cache exploits that: it remembers, per tree, the node each test row
// lands in. After an op it re-walks a tree from the root only if that tree
// retrained a subtree; otherwise it *resumes* each row's descent from the
// cached node — a no-op when the node is still a leaf (deletion never
// grows leaves), and a short walk into the grown subtree when an insert
// rebuilt the leaf into a split in place (same address, fresh children).
//
// Exactness: probabilities and hard predictions are byte-identical to
// DareForest::PredictProbAll / PredictAll — per-row tree probabilities are
// summed in tree order before one division, mirroring PredictProb.

#ifndef FUME_STREAM_PREDICTION_CACHE_H_
#define FUME_STREAM_PREDICTION_CACHE_H_

#include <vector>

#include "data/dataset.h"
#include "forest/forest.h"

namespace fume {
namespace stream {

class TestPredictionCache {
 public:
  /// Full walk of every tree for every test row. Call after building,
  /// loading or replacing the forest.
  void Rebuild(const DareForest& forest, const Dataset& test);

  /// Incrementally refreshes after one forest op. `tree_dirty[t]` must be
  /// true when tree t may have freed nodes during the op (any subtree
  /// retrain) — those trees are re-walked from the root; the rest resume
  /// from their cached nodes.
  void Update(const DareForest& forest, const Dataset& test,
              const std::vector<bool>& tree_dirty);

  /// Mean forest probability per test row; byte-identical to
  /// forest.PredictProbAll(test).
  const std::vector<double>& probs() const { return mean_prob_; }
  /// Hard predictions at the 0.5 threshold; byte-identical to PredictAll.
  const std::vector<int>& predictions() const { return pred_; }

  int num_trees() const { return static_cast<int>(leaf_.size()); }

 private:
  void WalkTree(const DareForest& forest, const Dataset& test, int t);
  void ResumeTree(const Dataset& test, int t);
  void Finalize(const DareForest& forest);

  // leaf_[t][r]: the leaf of tree t that test row r reaches (nullptr when
  // the tree has no root). prob_[t][r]: that leaf's positive fraction.
  std::vector<std::vector<const TreeNode*>> leaf_;
  std::vector<std::vector<double>> prob_;
  std::vector<double> mean_prob_;
  std::vector<int> pred_;
};

}  // namespace stream
}  // namespace fume

#endif  // FUME_STREAM_PREDICTION_CACHE_H_
