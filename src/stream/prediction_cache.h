// Compatibility shim: TestPredictionCache moved to forest/prediction_cache.h
// so FUME's what-if evaluations can share it with the stream engine. The
// stream:: alias keeps existing includes and call sites working.

#ifndef FUME_STREAM_PREDICTION_CACHE_H_
#define FUME_STREAM_PREDICTION_CACHE_H_

#include "forest/prediction_cache.h"

namespace fume {
namespace stream {

using ::fume::TestPredictionCache;

}  // namespace stream
}  // namespace fume

#endif  // FUME_STREAM_PREDICTION_CACHE_H_
