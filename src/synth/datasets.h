// The five synthetic stand-ins for the paper's evaluation datasets,
// calibrated to Table 2 (size, #features, protected fraction, per-group base
// rates), each with planted biased cohorts mirroring the paper's findings.
// Plus: a fully-controlled planted-bias dataset for tests/examples and a
// parametric generator for the scaling study (Figure 5).

#ifndef FUME_SYNTH_DATASETS_H_
#define FUME_SYNTH_DATASETS_H_

#include "synth/common.h"

namespace fume {
namespace synth {

/// German Credit: 1,000 x 21, sensitive = age (Young = protected).
Result<DatasetBundle> MakeGermanCredit(const SynthOptions& options);

/// Adult Census Income: 45,222 x 10, sensitive = sex (Female = protected).
Result<DatasetBundle> MakeAdult(const SynthOptions& options);

/// Stop-Question-Frisk: 72,546 x 16, sensitive = race; plants the sex-race
/// proxy correlation behind the paper's SS1 finding.
Result<DatasetBundle> MakeSqf(const SynthOptions& options);

/// ACS Income (CA): 139,833 x 10, sensitive = sex; bias diffused over many
/// weak cohorts (the paper's negative-shape result at 5-15% support).
Result<DatasetBundle> MakeAcsIncome(const SynthOptions& options);

/// MEPS Panel 19: 11,081 x 42, sensitive = race; outcome strongly driven by
/// a cancer-diagnosis flag concentrated in the protected group.
Result<DatasetBundle> MakeMeps(const SynthOptions& options);

/// Small, fully controlled dataset with ONE strongly biased planted cohort
/// (attrs "A".."E"; cohort A=a1 AND B=b2). Tests assert FUME ranks it #1.
struct PlantedOptions {
  int64_t num_rows = 2000;
  uint64_t seed = 7;
  /// How much worse the protected members of the planted cohort fare.
  double planted_penalty = 0.45;
};
Result<DatasetBundle> MakePlantedBias(const PlantedOptions& options);

/// The planted cohort of MakePlantedBias as (attr, code) conditions.
std::vector<std::pair<int, int32_t>> PlantedCohortConditions();

/// Parametric generator for the Figure 5 scaling study: `num_attrs`
/// attributes with `values_per_attr` distinct values each.
Result<DatasetBundle> MakeParametric(int64_t num_rows, int num_attrs,
                                     int values_per_attr, uint64_t seed);

}  // namespace synth
}  // namespace fume

#endif  // FUME_SYNTH_DATASETS_H_
