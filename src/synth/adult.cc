// Synthetic Adult Census Income (Table 2 row 2): 45,222 rows, 10
// attributes, sensitive = sex (Female = protected, 32.5%), base rates
// 31.24% / 11.35%. Cohorts mirror Table 4 (AS1-AS5).

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

namespace {

SynthModel AdultModel() {
  SynthModel m;
  m.name = "adult-income";
  m.sensitive_attr = "Sex";
  m.privileged_category = "Male";
  m.protected_fraction = 0.325;
  m.priv_base = 0.3124;
  m.prot_base = 0.1135;
  m.label_noise = 0.02;

  auto add = [&m](const std::string& name, std::vector<std::string> cats,
                  std::vector<double> priv_w,
                  std::vector<double> prot_w = {}) {
    AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(priv_w);
    a.prot_weights = std::move(prot_w);
    m.attrs.push_back(std::move(a));
  };

  add("Age", {"Young", "Middle-aged", "Senior", "Elderly"},
      {0.30, 0.42, 0.20, 0.08});
  add("Workclass",
      {"Private", "Self employed no income", "Self employed incorporated",
       "Government", "Other"},
      {0.69, 0.08, 0.04, 0.14, 0.05}, {0.75, 0.04, 0.02, 0.15, 0.04});
  add("Education",
      {"HS or less", "Some college", "Bachelors", "Masters", "Doctorate"},
      {0.45, 0.28, 0.17, 0.08, 0.02});
  add("MaritalStatus", {"Married", "Never married", "Divorced", "Widowed"},
      {0.58, 0.26, 0.13, 0.03}, {0.32, 0.35, 0.24, 0.09});
  add("Occupation",
      {"Professional", "Clerical administration", "Sales", "Service",
       "Manual", "Other"},
      {0.22, 0.08, 0.11, 0.12, 0.38, 0.09},
      {0.22, 0.28, 0.12, 0.23, 0.10, 0.05});
  add("Relationship", {"Husband", "Wife", "Own child", "Unmarried", "Other"},
      {0.57, 0.00999, 0.13, 0.18, 0.11},
      {0.001, 0.33, 0.14, 0.36, 0.169});
  add("Race", {"White", "Black", "Asian", "Other"},
      {0.86, 0.08, 0.04, 0.02});
  add("Sex", {"Female", "Male"}, {0.5, 0.5});  // sensitive
  add("HoursPerWeek", {"Part-time", "Full-time", "Overtime"},
      {0.14, 0.58, 0.28}, {0.30, 0.57, 0.13});
  add("NativeRegion", {"North America", "Latin America", "Asia", "Europe"},
      {0.90, 0.05, 0.03, 0.02});

  m.cohorts = {
      // AS1: a privileged-favored cohort — removing it narrows the gap.
      {{{"Sex", "Male"}, {"Education", "Bachelors"}}, 0.0, +0.30},
      // AS2-AS5: cohorts where protected members fare worse.
      {{{"Occupation", "Sales"}, {"Age", "Middle-aged"}}, -0.22, +0.06},
      {{{"Occupation", "Clerical administration"}}, -0.16, +0.05},
      {{{"Age", "Middle-aged"}, {"Workclass", "Self employed no income"}},
       -0.22, +0.06},
      {{{"Relationship", "Unmarried"}}, -0.14, +0.05},
  };
  return m;
}

}  // namespace

Result<DatasetBundle> MakeAdult(const SynthOptions& options) {
  const int64_t n = options.num_rows > 0 ? options.num_rows : 45222;
  return GenerateFromModel(AdultModel(), n, Hash64({options.seed, 0xad17ULL}));
}

}  // namespace synth
}  // namespace fume
