// Registry of the five paper datasets by name, so benches and examples can
// iterate "all evaluation datasets" uniformly.

#ifndef FUME_SYNTH_REGISTRY_H_
#define FUME_SYNTH_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "synth/datasets.h"

namespace fume {
namespace synth {

struct RegisteredDataset {
  std::string name;
  /// Paper's dataset size (Table 2).
  int64_t paper_rows = 0;
  int paper_features = 0;
  /// Table-row index prefix used in the paper's result tables ("GS", ...).
  std::string index_prefix;
  std::function<Result<DatasetBundle>(const SynthOptions&)> make;
};

/// All five evaluation datasets, in the paper's Table 2 order.
const std::vector<RegisteredDataset>& AllDatasets();

/// Lookup by name ("german-credit", "adult-income", "sqf", "acs-income",
/// "meps").
Result<RegisteredDataset> FindDataset(const std::string& name);

}  // namespace synth
}  // namespace fume

#endif  // FUME_SYNTH_REGISTRY_H_
