// Synthetic MEPS Panel 19 (Table 2 row 5): 11,081 rows, 42 attributes,
// sensitive = race (Non-white = protected, 64.07%), base rates 25.49% /
// 12.36% (label = high utilization of medical care). The outcome is
// strongly driven by a cancer-diagnosis flag whose effect is concentrated in
// the protected group, reproducing the paper's Table 7 where CancerDx=True
// appears in four of the top-5 subsets.

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

namespace {

SynthModel MepsModel() {
  SynthModel m;
  m.name = "meps";
  m.sensitive_attr = "Race";
  m.privileged_category = "White";
  m.protected_fraction = 0.6407;
  m.priv_base = 0.2549;
  m.prot_base = 0.1236;
  m.label_noise = 0.02;

  auto add = [&m](const std::string& name, std::vector<std::string> cats,
                  std::vector<double> priv_w,
                  std::vector<double> prot_w = {}) {
    AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(priv_w);
    a.prot_weights = std::move(prot_w);
    m.attrs.push_back(std::move(a));
  };

  add("Race", {"Non-white", "White"}, {0.5, 0.5});  // sensitive
  add("Age", {"Child", "Young adult", "Middle-aged", "Senior"},
      {0.24, 0.26, 0.30, 0.20});
  add("Sex", {"Male", "Female"}, {0.48, 0.52});
  add("Marital", {"Married", "Never married", "Divorced", "Widowed"},
      {0.48, 0.36, 0.11, 0.05});
  add("Region", {"Northeast", "Midwest", "South", "West"},
      {0.16, 0.20, 0.38, 0.26});
  add("IncomeBracket", {"Poor", "Near poor", "Low", "Middle", "High"},
      {0.15, 0.06, 0.14, 0.30, 0.35}, {0.27, 0.08, 0.18, 0.28, 0.19});
  add("InsuranceCoverage", {"False", "True"}, {0.10, 0.90}, {0.17, 0.83});
  add("EmploymentStatus", {"Employed", "Unemployed", "Retired", "Student"},
      {0.58, 0.13, 0.19, 0.10}, {0.55, 0.20, 0.13, 0.12});
  // Diagnosis / limitation flags.
  add("CancerDx", {"No", "True"}, {0.915, 0.085}, {0.955, 0.045});
  add("ChronicBronchitis", {"No", "Yes"}, {0.95, 0.05});
  add("EmphysemaDx", {"No", "Yes"}, {0.975, 0.025});
  add("CognitiveLimitations", {"No", "Yes"}, {0.93, 0.07});
  add("ActivityLimitation", {"No", "Yes"}, {0.81, 0.19});
  add("HighBloodPressure", {"No", "Yes"}, {0.67, 0.33});
  add("HeartDisease", {"No", "Yes"}, {0.90, 0.10});
  add("Stroke", {"No", "Yes"}, {0.96, 0.04});
  add("Diabetes", {"No", "Yes"}, {0.89, 0.11});
  add("Asthma", {"No", "Yes"}, {0.90, 0.10});
  add("Arthritis", {"No", "Yes"}, {0.74, 0.26});
  add("JointPain", {"No", "Yes"}, {0.66, 0.34});
  // Generic survey attributes filling out the 42-column layout.
  for (int i = 0; i < 22; ++i) {
    AttrSpec a;
    a.name = "SurveyItem" + std::to_string(i + 1);
    const int card = 2 + (i % 3);  // cardinalities 2..4
    for (int v = 0; v < card; ++v) {
      a.categories.push_back("V" + std::to_string(v));
    }
    a.priv_weights = RoughUniform(card, 0x3e95ULL + static_cast<uint64_t>(i));
    m.attrs.push_back(std::move(a));
  }

  m.cohorts = {
      // The comorbidity-free cancer sub-cohort (~95% of cancer patients)
      // carries a strong penalty while the small comorbid complement
      // actively counteracts — so removing a PAIR like (CancerDx AND
      // Bronchitis=No) keeps the counteracting sliver and outranks removing
      // the whole flag, the ordering the paper's Table 7 shows. Pairs with
      // the other comorbidity flags select nearly the same rows and score
      // alongside (the paper's ME3/ME4).
      {{{"CancerDx", "True"}}, +0.22, +0.32},
      {{{"CancerDx", "True"}, {"ChronicBronchitis", "No"}}, -0.50, -0.02},
      // ME2: insured-but-unemployed cohort.
      {{{"InsuranceCoverage", "True"}, {"EmploymentStatus", "Unemployed"}},
       -0.28, +0.10},
      // Mild reinforcing comorbidity effects.
      {{{"ActivityLimitation", "Yes"}}, +0.06, +0.12},
      {{{"CognitiveLimitations", "Yes"}}, -0.06, +0.04},
  };
  return m;
}

}  // namespace

Result<DatasetBundle> MakeMeps(const SynthOptions& options) {
  const int64_t n = options.num_rows > 0 ? options.num_rows : 11081;
  return GenerateFromModel(MepsModel(), n, Hash64({options.seed, 0x3e95ULL}));
}

}  // namespace synth
}  // namespace fume
