#include "synth/registry.h"

namespace fume {
namespace synth {

const std::vector<RegisteredDataset>& AllDatasets() {
  static const std::vector<RegisteredDataset>* kDatasets = [] {
    auto* v = new std::vector<RegisteredDataset>();
    v->push_back({"german-credit", 1000, 21, "GS", MakeGermanCredit});
    v->push_back({"adult-income", 45222, 10, "AS", MakeAdult});
    v->push_back({"sqf", 72546, 16, "SS", MakeSqf});
    v->push_back({"acs-income", 139833, 10, "AC", MakeAcsIncome});
    v->push_back({"meps", 11081, 42, "ME", MakeMeps});
    return v;
  }();
  return *kDatasets;
}

Result<RegisteredDataset> FindDataset(const std::string& name) {
  for (const RegisteredDataset& d : AllDatasets()) {
    if (d.name == name) return d;
  }
  return Status::KeyError("no registered dataset named '" + name + "'");
}

}  // namespace synth
}  // namespace fume
