// Fully-controlled planted-bias dataset: five generic attributes, one known
// biased cohort (A = a1 AND B = b2). Used by tests (FUME must rank the
// planted cohort first) and the quickstart example.

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

std::vector<std::pair<int, int32_t>> PlantedCohortConditions() {
  // Attribute order below: Group(0), A(1), B(2), C(3), D(4), E(5).
  return {{1, 1}, {2, 2}};  // A = a1, B = b2
}

Result<DatasetBundle> MakePlantedBias(const PlantedOptions& options) {
  SynthModel m;
  m.name = "planted-bias";
  m.sensitive_attr = "Group";
  m.privileged_category = "Privileged";
  m.protected_fraction = 0.4;
  // Small global gap; the planted cohort carries most of the disparity so
  // tests can assert it is recovered as the #1 explanation.
  m.priv_base = 0.62;
  m.prot_base = 0.58;
  m.label_noise = 0.01;

  auto add = [&m](const std::string& name, std::vector<std::string> cats,
                  std::vector<double> weights) {
    AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(weights);
    m.attrs.push_back(std::move(a));
  };
  add("Group", {"Protected", "Privileged"}, {0.5, 0.5});  // sensitive
  add("A", {"a0", "a1", "a2"}, {0.45, 0.33, 0.22});
  add("B", {"b0", "b1", "b2"}, {0.40, 0.33, 0.27});
  add("C", {"c0", "c1"}, {0.5, 0.5});
  add("D", {"d0", "d1", "d2", "d3"}, {0.25, 0.25, 0.25, 0.25});
  add("E", {"e0", "e1"}, {0.6, 0.4});

  m.cohorts = {
      {{{"A", "a1"}, {"B", "b2"}}, -options.planted_penalty, +0.15},
  };
  return GenerateFromModel(m, options.num_rows,
                           Hash64({options.seed, 0x9127ULL}));
}

}  // namespace synth
}  // namespace fume
