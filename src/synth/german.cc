// Synthetic German Credit (Table 2 row 1): 1,000 rows, 21 attributes,
// sensitive attribute age (Young < 45 = protected, 41.1% of data), base
// rates 74.19% (privileged) / 63.99% (protected). The five planted cohorts
// mirror the patterns of the paper's Table 3 (GS1-GS5).

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

namespace {

SynthModel GermanModel() {
  SynthModel m;
  m.name = "german-credit";
  m.sensitive_attr = "Age";
  m.privileged_category = "Senior";  // >= 45
  m.protected_fraction = 0.411;
  m.priv_base = 0.7419;
  m.prot_base = 0.6399;
  m.label_noise = 0.02;

  auto add = [&m](const std::string& name, std::vector<std::string> cats,
                  std::vector<double> weights) {
    AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(weights);
    m.attrs.push_back(std::move(a));
  };

  add("StatusChecking",
      {"< 0 DM", "0 <= ... < 200 DM", ">= 200 DM", "No checking account"},
      {0.27, 0.27, 0.06, 0.40});
  add("Duration", {"Short", "Medium", "Long", "Very long"},
      {0.30, 0.35, 0.25, 0.10});
  add("CreditHistory",
      {"No credits", "All paid", "Existing paid", "Delay", "Critical"},
      {0.04, 0.05, 0.53, 0.09, 0.29});
  add("Purpose",
      {"New car", "Used car", "Furniture", "Radio/TV", "Education", "Other"},
      {0.23, 0.10, 0.18, 0.28, 0.06, 0.15});
  add("CreditAmount", {"Low", "Medium", "High", "Very high"},
      {0.30, 0.35, 0.22, 0.13});
  add("Savings",
      {"< 100 DM", "100 <= ... < 500 DM", "500 <= ... < 1000 DM", ">= 1000 DM",
       "Unknown"},
      {0.60, 0.17, 0.06, 0.05, 0.12});
  add("EmploymentSince",
      {"Unemployed", "< 1 year", "1-4 years", "4-7 years", ">= 7 years"},
      {0.06, 0.17, 0.34, 0.17, 0.26});
  add("InstallmentRate", {"1", "2", "3", "4"}, {0.14, 0.23, 0.16, 0.47});
  add("StatusSex",
      {"Male divorced/separated", "Female divorced/separated/married",
       "Male single", "Male married/widowed"},
      {0.05, 0.31, 0.55, 0.09});
  add("Debtors", {"None", "Co-applicant", "Guarantor"}, {0.91, 0.04, 0.05});
  add("ResidenceSince", {"1", "2", "3", "4"}, {0.13, 0.31, 0.15, 0.41});
  add("Property", {"Real estate", "Savings agreement", "Car",
                   "Unknown / no property"},
      {0.28, 0.23, 0.33, 0.16});
  add("Age", {"Young", "Senior"}, {0.5, 0.5});  // sensitive; weights unused
  add("InstallmentPlans", {"Bank", "Stores", "None"}, {0.14, 0.05, 0.81});
  add("Housing", {"Rent", "Own", "For free"}, {0.18, 0.71, 0.11});
  add("ExistingCredits", {"1", "2", "3+"}, {0.63, 0.33, 0.04});
  add("Job", {"Unemployed non-resident", "Unskilled resident",
              "Skilled employee / official", "Management / self-employed"},
      {0.02, 0.20, 0.63, 0.15});
  add("NumPeopleLiable", {"Low", "High"}, {0.80, 0.20});
  add("Telephone", {"None", "Registered"}, {0.60, 0.40});
  add("ForeignWorker", {"Yes", "No"}, {0.96, 0.04});
  add("Gender", {"Male", "Female"}, {0.69, 0.31});

  // Planted cohorts mirroring Table 3 (GS1-GS5). Protected members of each
  // cohort receive markedly worse outcomes.
  m.cohorts = {
      {{{"StatusChecking", "< 0 DM"}, {"NumPeopleLiable", "High"}},
       /*protected_delta=*/-0.45, /*privileged_delta=*/+0.05},
      {{{"Savings", "100 <= ... < 500 DM"},
        {"Job", "Skilled employee / official"}},
       -0.35, +0.05},
      {{{"InstallmentPlans", "Bank"}, {"Debtors", "None"}}, -0.30, +0.04},
      {{{"StatusChecking", "No checking account"},
        {"Property", "Unknown / no property"}},
       -0.35, +0.04},
      {{{"Housing", "Rent"},
        {"StatusSex", "Female divorced/separated/married"}},
       -0.35, +0.05},
  };
  return m;
}

}  // namespace

Result<DatasetBundle> MakeGermanCredit(const SynthOptions& options) {
  const int64_t n = options.num_rows > 0 ? options.num_rows : 1000;
  return GenerateFromModel(GermanModel(), n, Hash64({options.seed, 0x6e72ULL}));
}

}  // namespace synth
}  // namespace fume
