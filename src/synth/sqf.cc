// Synthetic Stop-Question-Frisk (Table 2 row 3): 72,546 rows, 16
// attributes, sensitive = race (Non-white = protected, 35.94%), base rates
// 38.32% / 30.16%. Plants the sex-race proxy correlation behind the paper's
// headline SS1 finding (removing Sex=Female rows removes ~all bias), plus
// the weight/build cohorts of SS2-SS5.

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

namespace {

SynthModel SqfModel() {
  SynthModel m;
  m.name = "sqf";
  m.sensitive_attr = "Race";
  m.privileged_category = "White";
  m.protected_fraction = 0.3594;
  m.priv_base = 0.3832;
  m.prot_base = 0.3016;
  m.label_noise = 0.02;

  auto add = [&m](const std::string& name, std::vector<std::string> cats,
                  std::vector<double> priv_w,
                  std::vector<double> prot_w = {}) {
    AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(priv_w);
    a.prot_weights = std::move(prot_w);
    m.attrs.push_back(std::move(a));
  };

  add("Race", {"Non-white", "White"}, {0.5, 0.5});  // sensitive
  // Proxy correlation: females are rare overall (~6.5%) and far more common
  // in the protected group — so Sex carries most of the race signal.
  add("Sex", {"Male", "Female"}, {0.972, 0.028}, {0.875, 0.125});
  add("AgeGroup", {"Teen", "Young adult", "Adult", "Senior"},
      {0.23, 0.41, 0.29, 0.07});
  add("Weight", {"Light", "Medium", "Heavy"}, {0.22, 0.55, 0.23});
  add("Build", {"Thin", "Medium", "Heavy"}, {0.31, 0.49, 0.20});
  add("Height", {"Short", "Average", "Tall"}, {0.23, 0.55, 0.22});
  add("InsideOutside", {"Inside", "Outside"}, {0.22, 0.78});
  add("TimeOfDay", {"Morning", "Afternoon", "Evening", "Night"},
      {0.12, 0.27, 0.33, 0.28});
  add("PrecinctRegion",
      {"Manhattan", "Brooklyn", "Queens", "Bronx", "Staten Island"},
      {0.22, 0.32, 0.21, 0.20, 0.05});
  add("CasingVictim", {"False", "True"}, {0.72, 0.28});
  add("DrugTransaction", {"False", "True"}, {0.84, 0.16});
  add("Lookout", {"False", "True"}, {0.77, 0.23});
  add("FitsDescription", {"False", "True"}, {0.73, 0.27});
  add("FurtiveMovements", {"False", "True"}, {0.48, 0.52});
  add("SuspiciousBulge", {"False", "True"}, {0.89, 0.11});
  add("PriorStops", {"None", "Few", "Many"}, {0.58, 0.30, 0.12});

  m.cohorts = {
      // SS1 driver: the race gap is concentrated in the (rare,
      // protected-skewed) female rows — protected females fare drastically
      // worse, privileged females drastically better. The calibration pass
      // then pulls the male subpopulations toward race parity, so a model
      // retrained without Sex=Female rows shows almost no group disparity.
      {{{"Sex", "Female"}}, -0.45, +0.50},
      // SS2-SS5 mirrors.
      {{{"Weight", "Light"}, {"CasingVictim", "False"}}, -0.20, +0.06},
      {{{"Build", "Heavy"}, {"FitsDescription", "False"}}, -0.18, +0.06},
      {{{"Lookout", "False"}, {"DrugTransaction", "True"}}, -0.20, +0.06},
      {{{"Weight", "Light"}}, -0.06, +0.02},
  };
  return m;
}

}  // namespace

Result<DatasetBundle> MakeSqf(const SynthOptions& options) {
  const int64_t n = options.num_rows > 0 ? options.num_rows : 72546;
  return GenerateFromModel(SqfModel(), n, Hash64({options.seed, 0x5cfULL}));
}

}  // namespace synth
}  // namespace fume
