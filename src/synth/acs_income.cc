// Synthetic ACS Income, California PUMS (Table 2 row 4): 139,833 rows, 10
// attributes, sensitive = sex (Female = protected, 48.55%), base rates
// 43.53% / 31.06%. The paper's finding here is a *negative shape*: in a
// dataset this large, no small (5-15% support) subset explains much of the
// bias — reductions top out around 12-27% — while > 30%-support subsets
// reach ~70%. We reproduce that by diffusing the group gap over many weak
// cohorts instead of planting a few strong ones.

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

namespace {

SynthModel AcsModel() {
  SynthModel m;
  m.name = "acs-income";
  m.sensitive_attr = "Sex";
  m.privileged_category = "Male";
  m.protected_fraction = 0.4855;
  m.priv_base = 0.4353;
  m.prot_base = 0.3106;
  m.label_noise = 0.02;

  auto add = [&m](const std::string& name, std::vector<std::string> cats,
                  std::vector<double> priv_w,
                  std::vector<double> prot_w = {}) {
    AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(priv_w);
    a.prot_weights = std::move(prot_w);
    m.attrs.push_back(std::move(a));
  };

  add("Age", {"Young", "Middle-aged", "Senior", "Elderly"},
      {0.27, 0.40, 0.23, 0.10});
  add("WorkClass",
      {"Private", "Self-employed", "Local government", "State government",
       "Federal government"},
      {0.71, 0.12, 0.09, 0.05, 0.03});
  add("School",
      {"No diploma", "HS diploma", ">= 1 college credit but no degree",
       "Associate", "Bachelors", "Graduate"},
      {0.12, 0.22, 0.24, 0.09, 0.22, 0.11});
  add("Marital", {"Married", "Never married", "Divorced", "Widowed"},
      {0.52, 0.33, 0.12, 0.03});
  add("OccupationGroup",
      {"Management", "Professional", "Service", "Sales", "Production",
       "Other"},
      {0.17, 0.22, 0.17, 0.10, 0.23, 0.11},
      {0.15, 0.27, 0.23, 0.13, 0.09, 0.13});
  add("Race", {"White", "Asian", "Black", "Other"}, {0.58, 0.16, 0.06, 0.20});
  add("Sex", {"Female", "Male"}, {0.5, 0.5});  // sensitive
  add("HoursWorked", {"Part-time", "Full-time", "Overtime"},
      {0.17, 0.60, 0.23}, {0.28, 0.58, 0.14});
  add("PlaceOfBirth", {"California", "Other US", "Foreign"},
      {0.52, 0.21, 0.27});
  add("Relationship", {"Householder", "Spouse", "Child", "Other"},
      {0.42, 0.22, 0.21, 0.15});

  // Many weak cohorts: each explains only a sliver of the gap (the paper's
  // Table 6 subsets achieve 12-27%).
  m.cohorts = {
      {{{"HoursWorked", "Overtime"}, {"WorkClass", "Private"}}, -0.10, +0.06},
      {{{"Age", "Senior"}}, -0.07, +0.04},
      {{{"Age", "Middle-aged"},
        {"School", ">= 1 college credit but no degree"}},
       -0.08, +0.04},
      {{{"HoursWorked", "Part-time"}}, -0.06, +0.03},
      {{{"WorkClass", "Local government"}}, -0.08, +0.04},
      {{{"OccupationGroup", "Sales"}}, -0.05, +0.03},
      {{{"Marital", "Married"}}, -0.04, +0.03},
      {{{"OccupationGroup", "Service"}}, -0.05, +0.02},
      {{{"School", "Bachelors"}}, -0.05, +0.03},
      {{{"PlaceOfBirth", "Foreign"}}, -0.04, +0.02},
  };
  return m;
}

}  // namespace

Result<DatasetBundle> MakeAcsIncome(const SynthOptions& options) {
  const int64_t n = options.num_rows > 0 ? options.num_rows : 139833;
  return GenerateFromModel(AcsModel(), n, Hash64({options.seed, 0xac5ULL}));
}

}  // namespace synth
}  // namespace fume
