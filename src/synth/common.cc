#include "synth/common.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace fume {
namespace synth {

std::vector<double> RoughUniform(int n, uint64_t key) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Weights in [0.2, 1.8]: spread wide enough that some categories are
    // rare (so realistic low-support subsets exist) without any being
    // vanishingly so.
    const double u = static_cast<double>(
                         Hash64({key, static_cast<uint64_t>(i)}) >> 11) *
                     0x1.0p-53;
    w[static_cast<size_t>(i)] = 0.2 + 1.6 * u;
  }
  return w;
}

namespace {

struct ResolvedCohort {
  std::vector<std::pair<int, int32_t>> conditions;  // attr index, code
  double protected_delta;
  double privileged_delta;
};

double Clamp01(double p) { return std::min(0.97, std::max(0.03, p)); }

}  // namespace

Result<DatasetBundle> GenerateFromModel(const SynthModel& model,
                                        int64_t num_rows, uint64_t seed) {
  if (num_rows <= 0) return Status::Invalid("num_rows must be positive");
  // Build the schema and locate the sensitive attribute.
  Schema schema;
  int sensitive_attr = -1;
  for (size_t j = 0; j < model.attrs.size(); ++j) {
    const AttrSpec& a = model.attrs[j];
    FUME_RETURN_NOT_OK(schema.AddCategorical(a.name, a.categories));
    if (a.name == model.sensitive_attr) sensitive_attr = static_cast<int>(j);
  }
  if (sensitive_attr < 0) {
    return Status::Invalid("sensitive attribute '" + model.sensitive_attr +
                           "' not in attrs");
  }
  const Attribute& sens = schema.attribute(sensitive_attr);
  if (sens.cardinality() != 2) {
    return Status::Invalid("sensitive attribute must be binary");
  }
  const int priv_code = sens.FindCategory(model.privileged_category);
  if (priv_code < 0) {
    return Status::Invalid("privileged category '" +
                           model.privileged_category + "' not found");
  }

  // Resolve cohort conditions to (attr, code).
  std::vector<ResolvedCohort> cohorts;
  for (const CohortEffect& c : model.cohorts) {
    ResolvedCohort rc;
    rc.protected_delta = c.protected_delta;
    rc.privileged_delta = c.privileged_delta;
    for (const auto& [attr_name, cat_name] : c.conditions) {
      FUME_ASSIGN_OR_RETURN(int attr, schema.FindAttribute(attr_name));
      const int code = schema.attribute(attr).FindCategory(cat_name);
      if (code < 0) {
        return Status::Invalid("cohort category '" + cat_name +
                               "' not found in attribute '" + attr_name + "'");
      }
      rc.conditions.emplace_back(attr, code);
    }
    cohorts.push_back(std::move(rc));
  }

  // --- Pass 1: sample features and the pre-calibration label propensity.
  const int p = static_cast<int>(model.attrs.size());
  std::vector<int32_t> codes(static_cast<size_t>(num_rows) *
                             static_cast<size_t>(p));
  std::vector<uint8_t> is_priv(static_cast<size_t>(num_rows));
  std::vector<double> cohort_shift(static_cast<size_t>(num_rows), 0.0);
  Rng feature_rng(Hash64({seed, 0xfea7ULL}));
  for (int64_t r = 0; r < num_rows; ++r) {
    const bool priv = !feature_rng.NextBernoulli(model.protected_fraction);
    is_priv[static_cast<size_t>(r)] = priv ? 1 : 0;
    for (int j = 0; j < p; ++j) {
      int32_t code;
      if (j == sensitive_attr) {
        code = priv ? priv_code : 1 - priv_code;
      } else {
        const AttrSpec& a = model.attrs[static_cast<size_t>(j)];
        const std::vector<double>& weights =
            (!priv && !a.prot_weights.empty()) ? a.prot_weights
                                               : a.priv_weights;
        code = static_cast<int32_t>(feature_rng.NextWeighted(weights));
      }
      codes[static_cast<size_t>(r) * p + j] = code;
    }
    for (const ResolvedCohort& c : cohorts) {
      bool match = true;
      for (const auto& [attr, code] : c.conditions) {
        if (codes[static_cast<size_t>(r) * p + attr] != code) {
          match = false;
          break;
        }
      }
      if (match) {
        cohort_shift[static_cast<size_t>(r)] +=
            priv ? c.privileged_delta : c.protected_delta;
      }
    }
  }

  // --- Calibration: fixed-point iteration on per-group intercepts so the
  // *expected generated* base rates (including probability clamping and
  // label noise) match the targets. A single linear correction is not
  // enough because strong cohort shifts saturate the clamp.
  const double target[2] = {model.prot_base, model.priv_base};
  double intercept[2] = {model.prot_base, model.priv_base};
  for (int iteration = 0; iteration < 12; ++iteration) {
    double mean[2] = {0.0, 0.0};
    int64_t group_n[2] = {0, 0};
    for (int64_t r = 0; r < num_rows; ++r) {
      const int g = is_priv[static_cast<size_t>(r)];
      const double q =
          Clamp01(intercept[g] + cohort_shift[static_cast<size_t>(r)]);
      mean[g] += q * (1.0 - 2.0 * model.label_noise) + model.label_noise;
      ++group_n[g];
    }
    for (int g = 0; g < 2; ++g) {
      if (group_n[g] == 0) continue;
      mean[g] /= static_cast<double>(group_n[g]);
      intercept[g] += target[g] - mean[g];
    }
  }

  // --- Pass 2: draw labels.
  Dataset data(schema);
  Rng label_rng(Hash64({seed, 0x1abe1ULL}));
  std::vector<int32_t> row(static_cast<size_t>(p));
  for (int64_t r = 0; r < num_rows; ++r) {
    for (int j = 0; j < p; ++j) {
      row[static_cast<size_t>(j)] = codes[static_cast<size_t>(r) * p + j];
    }
    const int g = is_priv[static_cast<size_t>(r)];
    double prob = Clamp01(intercept[g] + cohort_shift[static_cast<size_t>(r)]);
    int label = label_rng.NextBernoulli(prob) ? 1 : 0;
    if (label_rng.NextBernoulli(model.label_noise)) label = 1 - label;
    FUME_RETURN_NOT_OK(data.AppendRow(row, label));
  }

  DatasetBundle bundle;
  bundle.name = model.name;
  bundle.data = std::move(data);
  bundle.group.sensitive_attr = sensitive_attr;
  bundle.group.privileged_code = priv_code;
  return bundle;
}

}  // namespace synth
}  // namespace fume
