// Shared machinery for the synthetic dataset generators that stand in for
// the paper's five real-world datasets (see DESIGN.md §3 for the
// substitution rationale). A SynthModel specifies group-conditional feature
// distributions, per-group label base rates calibrated to the paper's
// Table 2, and planted "biased cohorts" — predicate-shaped subpopulations
// whose members receive shifted outcomes, i.e. exactly the kind of subset
// FUME is supposed to surface.

#ifndef FUME_SYNTH_COMMON_H_
#define FUME_SYNTH_COMMON_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "fairness/confusion.h"
#include "util/result.h"

namespace fume {
namespace synth {

/// One attribute: categories plus (optionally group-dependent) sampling
/// weights. Empty prot_weights means "same distribution as privileged".
struct AttrSpec {
  std::string name;
  std::vector<std::string> categories;
  std::vector<double> priv_weights;
  std::vector<double> prot_weights;
};

/// A planted biased cohort: members matching all conditions get their
/// P(label=1) shifted, by group. Negative protected_delta plants the classic
/// "unprivileged members of this cohort receive worse outcomes" pattern.
struct CohortEffect {
  std::vector<std::pair<std::string, std::string>> conditions;
  double protected_delta = 0.0;
  double privileged_delta = 0.0;
};

/// Full specification of one synthetic dataset.
struct SynthModel {
  std::string name;
  /// Sensitive attribute; must appear in `attrs` with exactly two
  /// categories. Its distribution comes from protected_fraction, not from
  /// weights.
  std::string sensitive_attr;
  std::string privileged_category;
  double protected_fraction = 0.5;
  /// Target P(label=1) per group (Table 2 base rates). A calibration pass
  /// nudges the per-group intercepts so the generated data hits these.
  double priv_base = 0.5;
  double prot_base = 0.5;
  std::vector<AttrSpec> attrs;
  std::vector<CohortEffect> cohorts;
  /// Independent label flip probability.
  double label_noise = 0.02;
};

/// A generated dataset plus the group specification FUME needs.
struct DatasetBundle {
  std::string name;
  Dataset data;
  GroupSpec group;
};

/// Options common to all named generators.
struct SynthOptions {
  /// 0 = the generator's paper-matching default size.
  int64_t num_rows = 0;
  uint64_t seed = 1;
};

/// Samples `num_rows` rows from the model. Deterministic in (model, seed).
Result<DatasetBundle> GenerateFromModel(const SynthModel& model,
                                        int64_t num_rows, uint64_t seed);

/// Uniform-ish weights helper: `n` categories with mild keyed variation so
/// distributions are not degenerate-uniform.
std::vector<double> RoughUniform(int n, uint64_t key);

}  // namespace synth
}  // namespace fume

#endif  // FUME_SYNTH_COMMON_H_
