// Parametric synthetic generator for the scaling study (paper Figure 5):
// arbitrary row count, attribute count and per-attribute cardinality, with a
// sensitive attribute, a moderate group gap and a handful of keyed cohorts
// so FUME has real work to do at every size.

#include "synth/datasets.h"

#include "util/rng.h"

namespace fume {
namespace synth {

Result<DatasetBundle> MakeParametric(int64_t num_rows, int num_attrs,
                                     int values_per_attr, uint64_t seed) {
  if (num_attrs < 2) return Status::Invalid("need at least 2 attributes");
  if (values_per_attr < 2 || values_per_attr > 32) {
    return Status::Invalid("values_per_attr must be in [2, 32]");
  }
  SynthModel m;
  m.name = "parametric-n" + std::to_string(num_rows) + "-p" +
           std::to_string(num_attrs) + "-d" + std::to_string(values_per_attr);
  m.sensitive_attr = "S";
  m.privileged_category = "priv";
  m.protected_fraction = 0.45;
  m.priv_base = 0.60;
  m.prot_base = 0.45;
  m.label_noise = 0.02;

  {
    AttrSpec s;
    s.name = "S";
    s.categories = {"prot", "priv"};
    s.priv_weights = {0.5, 0.5};
    m.attrs.push_back(std::move(s));
  }
  for (int j = 1; j < num_attrs; ++j) {
    AttrSpec a;
    a.name = "X" + std::to_string(j);
    for (int v = 0; v < values_per_attr; ++v) {
      a.categories.push_back("v" + std::to_string(v));
    }
    a.priv_weights =
        RoughUniform(values_per_attr, Hash64({seed, 0x9a4aULL,
                                              static_cast<uint64_t>(j)}));
    m.attrs.push_back(std::move(a));
  }

  // A few keyed cohorts over the non-sensitive attributes.
  const int num_cohorts = std::min(4, num_attrs - 1);
  for (int c = 0; c < num_cohorts; ++c) {
    CohortEffect effect;
    const int attr1 = 1 + static_cast<int>(
                              Hash64({seed, 0xc0bULL,
                                      static_cast<uint64_t>(c), 0}) %
                              static_cast<uint64_t>(num_attrs - 1));
    const int val1 = static_cast<int>(Hash64({seed, 0xc0bULL,
                                              static_cast<uint64_t>(c), 1}) %
                                      static_cast<uint64_t>(values_per_attr));
    effect.conditions.emplace_back(m.attrs[static_cast<size_t>(attr1)].name,
                                   "v" + std::to_string(val1));
    effect.protected_delta = -0.18 - 0.04 * c;
    effect.privileged_delta = 0.05;
    m.cohorts.push_back(std::move(effect));
  }
  return GenerateFromModel(m, num_rows, Hash64({seed, 0x9a3aULL}));
}

}  // namespace synth
}  // namespace fume
