#include "serve/tenant.h"

#include <cmath>
#include <utility>

#include "core/removal_method.h"
#include "fairness/metrics.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace fume::serve {

Tenant::Tenant(std::string name, TenantConfig config)
    : name_(std::move(name)), config_(std::move(config)) {}

Tenant::~Tenant() { Shutdown(); }

Result<std::unique_ptr<Tenant>> Tenant::Make(std::string name,
                                             const Dataset& initial_train,
                                             Dataset test,
                                             TenantConfig config) {
  if (config.whatif_threads < 1) {
    return Status::Invalid("whatif_threads must be >= 1");
  }
  std::unique_ptr<Tenant> tenant(
      new Tenant(std::move(name), std::move(config)));
  FUME_ASSIGN_OR_RETURN(
      auto engine, stream::StreamEngine::Create(initial_train, std::move(test),
                                                tenant->config_.engine));
  tenant->engine_.emplace(std::move(engine));
  if (!tenant->config_.oplog_path.empty()) {
    tenant->oplog_.open(tenant->config_.oplog_path, std::ios::app);
    if (!tenant->oplog_) {
      return Status::IOError("cannot open op-log " +
                             tenant->config_.oplog_path);
    }
  }
  tenant->pool_ =
      std::make_unique<util::ThreadPool>(tenant->config_.whatif_threads);
  for (int w = 0; w < tenant->config_.whatif_threads; ++w) {
    tenant->workers_.push_back(std::make_unique<WhatIfWorker>());
  }
  tenant->batcher_ = std::make_unique<WhatIfBatcher>(
      tenant->config_.batch, [t = tenant.get()](
                                 const std::vector<BatchJob*>& batch) {
        t->ExecuteBatch(batch);
      });
  {
    std::lock_guard<std::mutex> lk(tenant->write_mu_);
    tenant->PublishSnapshotLocked();
  }
  return tenant;
}

const Schema& Tenant::schema() const { return test_data().schema(); }

const Dataset& Tenant::test_data() const {
  // The engine never mutates its test set, so this is safe lock-free.
  return engine_->test_data();
}

void Tenant::PublishSnapshotLocked() {
  static obs::Counter* published = obs::GetCounter("serve.snapshot.published");
  // A published snapshot is shared with lock-free readers, so it must
  // never contain a lazy tag (DESIGN.md §6 invariant 9): the clone below
  // would owe a flush it could only pay by mutating shared nodes. The
  // engine flushed at every publication point — ApplyStreamOp skips
  // publication while deferring; checkpoints flush first.
  FUME_CHECK(!engine_->deferring());
  auto snap = std::make_shared<TenantSnapshot>();
  snap->seq = engine_->last_seq();
  snap->metric = engine_->current_metric();
  snap->accuracy = engine_->current_accuracy();
  snap->staleness = engine_->staleness();
  snap->rows_live = engine_->rows_live();
  if (engine_->is_sharded()) {
    snap->sharded.emplace(engine_->sharded_forest().Clone());
    snap->shard_cache = std::make_shared<const ShardedPredictionCache>(
        engine_->shard_prediction_cache());
  } else {
    snap->forest = engine_->forest().Clone();
    snap->cache = std::make_shared<const TestPredictionCache>(
        engine_->prediction_cache());
  }
  snap->live_ids = engine_->live_ids();
  if (const FumeResult* expl = engine_->explanation()) {
    snap->explanation = std::make_shared<const FumeResult>(*expl);
  }
  {
    std::lock_guard<std::mutex> lk(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  published->Inc();
}

Result<stream::OpOutcome> Tenant::ApplyStreamOp(const stream::StreamOp& op) {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (shut_down_) return Status::Invalid("tenant is shut down");
  FUME_ASSIGN_OR_RETURN(stream::OpOutcome outcome, engine_->Apply(op));
  if (oplog_.is_open()) {
    oplog_ << stream::FormatOp(op) << '\n';
    oplog_.flush();
    if (!oplog_) {
      return Status::IOError("op-log append failed for tenant " + name_);
    }
  }
  // During a deferred delete burst readers keep the older exact snapshot;
  // the first flush boundary (insert, checkpoint, explicit Checkpoint())
  // publishes the caught-up state.
  if (!engine_->deferring()) PublishSnapshotLocked();
  return outcome;
}

Result<std::string> Tenant::Checkpoint() {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (shut_down_) return Status::Invalid("tenant is shut down");
  if (config_.engine.checkpoint_path.empty()) {
    return Status::Invalid("tenant " + name_ + " has no checkpoint_path");
  }
  // Retire any deferred burst before persisting, then publish the flushed
  // state so readers catch up along with the checkpoint.
  engine_->FlushLazy();
  FUME_RETURN_NOT_OK(
      engine_->SaveCheckpointToFile(config_.engine.checkpoint_path));
  PublishSnapshotLocked();
  return config_.engine.checkpoint_path;
}

AdmitResult Tenant::WhatIf(BatchJob* job) { return batcher_->Submit(job); }

void Tenant::Shutdown() {
  // Null-tolerant: the destructor runs this on tenants Make() abandoned
  // half-built (e.g. an op-log that failed to open), before the batcher or
  // even the engine existed.
  if (batcher_ != nullptr) batcher_->Shutdown();
  std::lock_guard<std::mutex> lk(write_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  if (engine_.has_value() && !config_.engine.checkpoint_path.empty()) {
    // Best effort: a failed final checkpoint must not abort shutdown.
    const Status ckpt =
        engine_->SaveCheckpointToFile(config_.engine.checkpoint_path);
    (void)ckpt;
  }
  if (oplog_.is_open()) {
    oplog_.flush();
    oplog_.close();
  }
}

void Tenant::ExecuteBatch(const std::vector<BatchJob*>& batch) {
  // One snapshot and one warm scratch set for the whole batch — the point
  // of grouping. The batcher guarantees one batch in flight per tenant, so
  // the pool's single job slot and the worker scratches are exclusive.
  std::shared_ptr<const TenantSnapshot> snap = snapshot();
  const auto eval = [&](int worker, size_t i) {
    EvaluateWhatIf(*snap, batch[i], workers_[static_cast<size_t>(worker)].get());
  };
  if (pool_ != nullptr && batch.size() > 1 && config_.whatif_threads > 1) {
    pool_->ParallelFor(batch.size(), eval);
  } else {
    for (size_t i = 0; i < batch.size(); ++i) eval(0, i);
  }
}

void Tenant::EvaluateWhatIf(const TenantSnapshot& snap, BatchJob* job,
                            WhatIfWorker* worker) {
  WhatIfOutcome out;
  out.snapshot_seq = snap.seq;
  out.before_fairness = snap.metric;
  out.before_accuracy = snap.accuracy;

  // Live rows matching the candidate predicate, against the append-stable
  // store the snapshot forest references (global ids route through the
  // sharded placement maps when the tenant is sharded).
  const bool is_sharded = snap.sharded.has_value();
  worker->matched.clear();
  if (is_sharded) {
    for (const RowId id : snap.live_ids) {
      bool all = true;
      for (const Literal& lit : job->predicate.literals()) {
        if (!lit.Matches(snap.sharded->Code(id, lit.attr))) {
          all = false;
          break;
        }
      }
      if (all) worker->matched.push_back(id);
    }
  } else {
    const TrainingStore& store = snap.forest.store();
    for (const RowId id : snap.live_ids) {
      bool all = true;
      for (const Literal& lit : job->predicate.literals()) {
        if (!lit.Matches(store.code(id, lit.attr))) {
          all = false;
          break;
        }
      }
      if (all) worker->matched.push_back(id);
    }
  }
  out.rows_matched = static_cast<int64_t>(worker->matched.size());

  if (!worker->matched.empty()) {
    // The snapshot forest is flushed by contract, but a clone inherits
    // lazy_unlearn from the tenant config; this delete is scored right
    // away, so deferral would only add tag bookkeeping before ScoreWhatIf
    // flushed it again.
    const bool arena_rescore =
        worker->matched.size() >=
        UnlearnRemovalMethod::kArenaFullRescoreMinBatch;
    const std::vector<int>* preds = nullptr;
    if (is_sharded) {
      ShardedForest clone = snap.sharded->Clone();
      if (clone.shard(0).config().lazy_unlearn) clone.SetLazyUnlearn(false);
      FUME_CHECK(clone.DeleteRows(worker->matched, nullptr, /*pool=*/nullptr,
                                  &worker->shard_deletion)
                     .ok());
      snap.shard_cache->ScoreWhatIf(*snap.sharded, clone, test_data(),
                                    &worker->shard_scratch, arena_rescore);
      preds = &worker->shard_scratch.preds;
    } else {
      DareForest clone = snap.forest.Clone();
      if (clone.config().lazy_unlearn) clone.SetLazyUnlearn(false);
      FUME_CHECK(clone.DeleteRows(worker->matched, nullptr, &worker->deletion)
                     .ok());
      snap.cache->ScoreWhatIf(snap.forest, clone, test_data(),
                              &worker->scratch, arena_rescore);
      preds = &worker->scratch.preds;
    }
    const Dataset& test = test_data();
    out.after_fairness = ComputeFairness(
        test, *preds, config_.engine.fume.group, config_.engine.fume.metric);
    int64_t correct = 0;
    for (int64_t r = 0; r < test.num_rows(); ++r) {
      if ((*preds)[static_cast<size_t>(r)] == test.Label(r)) {
        ++correct;
      }
    }
    out.after_accuracy = test.num_rows() == 0
                             ? 0.0
                             : static_cast<double>(correct) /
                                   static_cast<double>(test.num_rows());
    // Same normalized improvement as repair/what_if.cc.
    const double original = std::fabs(out.before_fairness);
    out.parity_reduction =
        original == 0.0
            ? 0.0
            : (original - std::fabs(out.after_fairness)) / original;
  } else {
    out.after_fairness = snap.metric;
    out.after_accuracy = snap.accuracy;
    out.parity_reduction = 0.0;
  }
  job->outcome = out;
}

Status TenantRegistry::Add(std::unique_ptr<Tenant> tenant) {
  const std::string& name = tenant->name();
  if (tenants_.count(name) != 0) {
    return Status::Invalid("duplicate tenant \"" + name + "\"");
  }
  tenants_.emplace(name, std::move(tenant));
  return Status::OK();
}

Tenant* TenantRegistry::Find(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TenantRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

void TenantRegistry::ShutdownAll() {
  for (auto& [name, tenant] : tenants_) tenant->Shutdown();
}

}  // namespace fume::serve
