// Server: the long-lived TCP front end. One acceptor thread plus one
// thread per connection, each running a blocking read → dispatch → respond
// loop over the newline-delimited JSON protocol (serve/protocol.h).
//
// Reads (predict / explain / whatif) run entirely off the tenant's
// published snapshot and never take the writer lock; stream_op and
// checkpoint serialize on it per tenant. Shutdown() drains: the listener
// closes, every connection finishes the request it is currently serving,
// then tenants write final checkpoints and flush op-logs.

#ifndef FUME_SERVE_SERVER_H_
#define FUME_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "serve/protocol.h"
#include "serve/tenant.h"
#include "util/socket.h"

namespace fume::serve {

struct ServerConfig {
  /// 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Connections beyond this are answered with one `overloaded` error line
  /// and closed.
  int max_connections = 64;
  /// Applied to requests that carry no deadline_ms of their own (0 = none).
  int64_t default_deadline_ms = 0;
  /// Optional request log (owned by the caller, may be null).
  obs::EventLog* event_log = nullptr;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a tenant. Must happen before Start() — the registry is
  /// lock-free read-only while serving.
  Status RegisterTenant(std::string name, const Dataset& initial_train,
                        Dataset test, TenantConfig config);

  Status Start();
  int port() const { return port_; }

  /// Graceful drain (see file comment). Idempotent; also run by ~Server.
  void Shutdown();

  Tenant* FindTenant(const std::string& name) const {
    return registry_.Find(name);
  }

 private:
  void AcceptLoop();
  void ConnectionLoop(util::Socket sock);
  std::string Dispatch(const Request& req);
  std::string HandleHealth(const Request& req);
  std::string HandleMetrics(const Request& req);
  std::string HandlePredict(const Request& req, Tenant& tenant);
  std::string HandleExplain(const Request& req, Tenant& tenant);
  std::string HandleWhatIf(const Request& req, Tenant& tenant);
  std::string HandleStreamOp(const Request& req, Tenant& tenant);
  std::string HandleCheckpoint(const Request& req, Tenant& tenant);

  const ServerConfig config_;
  TenantRegistry registry_;
  util::ListenSocket listener_;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<int> active_connections_{0};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;  // guarded by conn_mu_
};

}  // namespace fume::serve

#endif  // FUME_SERVE_SERVER_H_
