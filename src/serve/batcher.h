// WhatIfBatcher: leader–follower group commit for concurrent `whatif`
// requests against one tenant.
//
// Connection threads call Submit() and block. The thread whose job is at
// the queue front becomes the leader: it waits up to `window_us` for the
// queue to fill (or until `max_batch` jobs are waiting), drains the batch,
// expires past-deadline jobs, dedups identical predicates, and hands the
// unique representatives to the executor in ONE call — which lets the
// tenant score the whole batch off a single snapshot with one warm scratch
// set. Followers get their results copied and wake up. With
// window_us == 0 / max_batch == 1 the same path degenerates to batch-1
// serving (the bench's comparison baseline).
//
// Admission control: a bounded queue (`queue_cap`) rejects excess load with
// an explicit kOverloaded instead of queueing unboundedly, and per-job
// deadlines reject stale work with kTimeout before any evaluation runs.
//
// The executor is injected so tests can drive admission and deadline
// behavior deterministically with a gated fake.

#ifndef FUME_SERVE_BATCHER_H_
#define FUME_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "subset/predicate.h"

namespace fume::serve {

/// Batching / admission knobs for one tenant.
struct BatchConfig {
  /// How long the leader waits for the batch to fill. 0 disables grouping.
  int64_t window_us = 200;
  /// Max jobs grouped into one executor call (1 = batch-1 serving).
  int max_batch = 16;
  /// Max jobs waiting; beyond this Submit returns kOverloaded immediately.
  int queue_cap = 64;
};

/// What happened to one submitted job.
enum class AdmitResult : uint8_t {
  kOk,          // executed; outcome is valid
  kOverloaded,  // rejected at admission (queue full)
  kTimeout,     // deadline passed before execution started
  kShutdown,    // batcher is shutting down
};

const char* AdmitResultName(AdmitResult r);

/// Payload the executor fills for each unique-predicate representative.
struct WhatIfOutcome {
  int64_t snapshot_seq = 0;
  int64_t rows_matched = 0;
  double before_fairness = 0.0;
  double before_accuracy = 0.0;
  double after_fairness = 0.0;
  double after_accuracy = 0.0;
  double parity_reduction = 0.0;
};

/// One queued whatif. Owned by the submitting thread for its whole life.
struct BatchJob {
  Predicate predicate;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  // Filled by the batcher / executor:
  WhatIfOutcome outcome;
  AdmitResult admit = AdmitResult::kOk;
  /// Jobs grouped into the executor call this job rode in (after expiry,
  /// including duplicates).
  int batch_size = 0;
  /// True when this job's result was copied from an identical predicate.
  bool deduped = false;

 private:
  friend class WhatIfBatcher;
  bool done = false;
  BatchJob* rep = nullptr;  // representative when deduped
};

class WhatIfBatcher {
 public:
  /// Executes one batch of unique-predicate jobs (never empty), filling
  /// job->outcome for each. Called outside the batcher lock, one batch at
  /// a time per batcher.
  using Executor = std::function<void(const std::vector<BatchJob*>&)>;

  WhatIfBatcher(BatchConfig config, Executor executor);
  ~WhatIfBatcher();
  WhatIfBatcher(const WhatIfBatcher&) = delete;
  WhatIfBatcher& operator=(const WhatIfBatcher&) = delete;

  /// Blocks until `job` is executed, rejected, or expired. Jobs already
  /// admitted when Shutdown() is called still drain through the executor.
  AdmitResult Submit(BatchJob* job);

  /// Rejects new submissions; queued jobs keep draining. Idempotent.
  void Shutdown();

 private:
  void RunAsLeader(std::unique_lock<std::mutex>& lk);

  const BatchConfig config_;
  const Executor executor_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<BatchJob*> queue_;
  bool executing_ = false;
  bool stop_ = false;
};

}  // namespace fume::serve

#endif  // FUME_SERVE_BATCHER_H_
