// Tenant: one registered dataset's serving state — a live StreamEngine
// behind a writer lock, an atomically published CoW snapshot for readers,
// and a WhatIfBatcher that scores grouped what-if candidates off one
// snapshot per batch.
//
// Snapshot-swap scheme: mutations (stream_op) run under `write_mu_` against
// the engine, then publish a fresh TenantSnapshot (CoW forest clone + a
// copy of the warm prediction cache) by swapping a shared_ptr under a
// dedicated pointer mutex whose critical section is just that copy.
// Readers grab the pointer and keep the snapshot alive for as long as
// they need it, so a predict/explain/whatif never waits behind engine
// work and never observes a half-applied op. The TrainingStore shared
// by the engine forest and every snapshot clone is append-stable
// (forest/training_store.h), so concurrent inserts never move the rows a
// snapshot reader is scanning.

#ifndef FUME_SERVE_TENANT_H_
#define FUME_SERVE_TENANT_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "forest/deletion_scratch.h"
#include "serve/batcher.h"
#include "stream/engine.h"
#include "util/thread_pool.h"

namespace fume::serve {

struct TenantConfig {
  stream::StreamEngineConfig engine;
  /// When non-empty, every applied stream op is appended (and flushed) to
  /// this op-log file so the served history stays replayable offline.
  std::string oplog_path;
  /// Threads scoring one whatif batch in parallel (1 = serial).
  int whatif_threads = 2;
  BatchConfig batch;
};

/// Immutable published serving state. Readers share it by shared_ptr; the
/// forest is a CoW clone so the writer's later mutations never touch it.
struct TenantSnapshot {
  int64_t seq = -1;
  double metric = 0.0;
  double accuracy = 0.0;
  int64_t staleness = 0;
  int64_t rows_live = 0;
  /// Monolithic tenants publish forest/cache; sharded tenants (engine
  /// config shard.num_shards > 1) publish sharded/shard_cache instead and
  /// leave forest empty. live_ids are then global row ids.
  DareForest forest;
  std::optional<ShardedForest> sharded;
  std::vector<RowId> live_ids;
  std::shared_ptr<const TestPredictionCache> cache;
  std::shared_ptr<const ShardedPredictionCache> shard_cache;
  std::shared_ptr<const FumeResult> explanation;  // null while fair
};

class Tenant {
 public:
  static Result<std::unique_ptr<Tenant>> Make(std::string name,
                                              const Dataset& initial_train,
                                              Dataset test,
                                              TenantConfig config);
  ~Tenant();
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return name_; }
  const TenantConfig& config() const { return config_; }
  const Schema& schema() const;
  /// Immutable after Make; safe to read from any thread.
  const Dataset& test_data() const;

  /// Current published snapshot (never null after Make). The critical
  /// section is one shared_ptr copy — readers never wait behind engine
  /// work, which all happens before the writer swaps the pointer in.
  /// (A plain mutex rather than std::atomic<shared_ptr>: libstdc++'s
  /// _Sp_atomic guards its pointer with an embedded lock bit that TSan
  /// cannot model, so every load/store pair reports a false race.)
  std::shared_ptr<const TenantSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lk(snapshot_mu_);
    return snapshot_;
  }

  /// Applies one op through the engine, appends it to the op-log, and
  /// publishes a fresh snapshot. Serialized across callers.
  Result<stream::OpOutcome> ApplyStreamOp(const stream::StreamOp& op);

  /// Writes the engine checkpoint to the configured path; returns the path.
  Result<std::string> Checkpoint();

  /// Scores one whatif through the batcher (blocks; see batcher.h).
  AdmitResult WhatIf(BatchJob* job);

  /// Stops admitting whatifs, drains, writes a final checkpoint when a
  /// checkpoint path is configured, and flushes the op-log. Idempotent.
  void Shutdown();

 private:
  /// Per-worker warm scratch so steady-state batches do not allocate.
  struct WhatIfWorker {
    std::vector<RowId> matched;
    DeletionScratch deletion;
    TestPredictionCache::WhatIfScratch scratch;
    /// Sharded-tenant counterparts (shard_deletion entry s serves shard s).
    std::vector<DeletionScratch> shard_deletion;
    ShardedPredictionCache::WhatIfScratch shard_scratch;
  };

  Tenant(std::string name, TenantConfig config);
  void PublishSnapshotLocked();
  void ExecuteBatch(const std::vector<BatchJob*>& batch);
  void EvaluateWhatIf(const TenantSnapshot& snap, BatchJob* job,
                      WhatIfWorker* worker);

  const std::string name_;
  const TenantConfig config_;

  std::mutex write_mu_;
  std::optional<stream::StreamEngine> engine_;  // guarded by write_mu_
  std::ofstream oplog_;                         // guarded by write_mu_
  bool shut_down_ = false;                      // guarded by write_mu_

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const TenantSnapshot> snapshot_;  // guarded by snapshot_mu_

  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<WhatIfWorker>> workers_;
  std::unique_ptr<WhatIfBatcher> batcher_;
};

/// Name -> tenant map, fixed after server start (no locking on lookup).
class TenantRegistry {
 public:
  Status Add(std::unique_ptr<Tenant> tenant);
  /// nullptr when unknown.
  Tenant* Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  void ShutdownAll();

 private:
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace fume::serve

#endif  // FUME_SERVE_TENANT_H_
