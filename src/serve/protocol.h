// Wire protocol for fume_serve: newline-delimited JSON, one request per
// line, one response line per request, over a plain TCP stream.
//
// Request shape: {"id": <int>, "op": "<name>", "tenant": "<name>", ...}
//   predict    rows=[[code,...],...]          -> predictions + probs
//   explain    (no extra fields)              -> cached top-k + staleness
//   whatif     predicate=[{attr,cmp,value}..] -> before/after fairness
//   stream_op  line="I <seq> ..."             -> op outcome (op-log format)
//   checkpoint (no extra fields)              -> checkpoint path written
//   metrics / health                          -> process-wide, no tenant
// Optional on any request: "deadline_ms" (reject with code "timeout" if not
// started in time). Responses: {"id":..,"ok":true,...} or
// {"id":..,"ok":false,"code":"<machine code>","error":"<message>"}.
//
// Doubles are serialized with %.17g on both the server and the offline
// tools, so a served number round-trips bit-exact — the byte-identity
// anchor the serve tests rely on.

#ifndef FUME_SERVE_PROTOCOL_H_
#define FUME_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/op_log.h"
#include "subset/predicate.h"
#include "util/result.h"

namespace fume::serve {

enum class RequestOp : uint8_t {
  kHealth,
  kMetrics,
  kPredict,
  kExplain,
  kWhatIf,
  kStreamOp,
  kCheckpoint,
};

const char* RequestOpName(RequestOp op);

/// One parsed request line.
struct Request {
  int64_t id = 0;
  RequestOp op = RequestOp::kHealth;
  std::string tenant;  // empty for health/metrics
  /// predict: one row of codes per entry.
  std::vector<std::vector<int32_t>> rows;
  /// whatif: candidate deletion predicate (literal conjunction).
  Predicate predicate;
  /// stream_op: parsed from the request's "line" field (op-log line text).
  stream::StreamOp stream_op;
  /// 0 = no deadline.
  int64_t deadline_ms = 0;
};

/// Parses one request line; malformed input yields a Status whose message
/// is safe to echo back in a "bad_request" response.
Result<Request> ParseRequest(const std::string& line);

// ---- request encoders (client / tests / bench) ----

std::string EncodeHealthRequest(int64_t id);
std::string EncodeMetricsRequest(int64_t id);
std::string EncodePredictRequest(int64_t id, const std::string& tenant,
                                 const std::vector<std::vector<int32_t>>& rows,
                                 int64_t deadline_ms = 0);
std::string EncodeExplainRequest(int64_t id, const std::string& tenant);
std::string EncodeWhatIfRequest(int64_t id, const std::string& tenant,
                                const Predicate& predicate,
                                int64_t deadline_ms = 0);
std::string EncodeStreamOpRequest(int64_t id, const std::string& tenant,
                                  const stream::StreamOp& op);
std::string EncodeCheckpointRequest(int64_t id, const std::string& tenant);

// ---- JSON writing helpers shared by server responses and encoders ----

/// Appends a quoted, escaped JSON string.
void AppendJsonString(std::string* out, const std::string& s);
/// Appends a double with %.17g (bit-exact round trip through ParseJson).
void AppendJsonDouble(std::string* out, double v);

/// {"id":..,"ok":false,"code":..,"error":..}\n
std::string ErrorResponse(int64_t id, const std::string& code,
                          const std::string& message);

/// Maps LiteralOp <-> the wire's "cmp" names ("eq","ne","lt","le","ge","gt").
const char* LiteralOpWireName(LiteralOp op);
Result<LiteralOp> LiteralOpFromWireName(const std::string& name);

}  // namespace fume::serve

#endif  // FUME_SERVE_PROTOCOL_H_
