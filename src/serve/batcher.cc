#include "serve/batcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace fume::serve {

const char* AdmitResultName(AdmitResult r) {
  switch (r) {
    case AdmitResult::kOk: return "ok";
    case AdmitResult::kOverloaded: return "overloaded";
    case AdmitResult::kTimeout: return "timeout";
    case AdmitResult::kShutdown: return "shutting_down";
  }
  return "unknown";
}

WhatIfBatcher::WhatIfBatcher(BatchConfig config, Executor executor)
    : config_(config), executor_(std::move(executor)) {
  FUME_CHECK(executor_ != nullptr);
  FUME_CHECK(config_.max_batch >= 1);
  FUME_CHECK(config_.queue_cap >= 1);
}

WhatIfBatcher::~WhatIfBatcher() { Shutdown(); }

void WhatIfBatcher::Shutdown() {
  std::lock_guard<std::mutex> lk(mu_);
  stop_ = true;
  cv_.notify_all();
}

AdmitResult WhatIfBatcher::Submit(BatchJob* job) {
  static obs::Counter* overloaded = obs::GetCounter("serve.whatif.overloaded");
  static obs::Gauge* depth = obs::GetGauge("serve.whatif.queue_depth");
  std::unique_lock<std::mutex> lk(mu_);
  if (stop_) return AdmitResult::kShutdown;
  if (static_cast<int>(queue_.size()) >= config_.queue_cap) {
    overloaded->Inc();
    return AdmitResult::kOverloaded;
  }
  job->done = false;
  job->rep = nullptr;
  job->deduped = false;
  queue_.push_back(job);
  depth->Set(static_cast<int64_t>(queue_.size()));
  cv_.notify_all();  // a waiting leader may now have a full batch
  while (!job->done) {
    if (!executing_ && !queue_.empty() && queue_.front() == job) {
      RunAsLeader(lk);  // sets done on every job in the drained batch
      continue;
    }
    cv_.wait(lk);
  }
  return job->admit;
}

void WhatIfBatcher::RunAsLeader(std::unique_lock<std::mutex>& lk) {
  static obs::Counter* formed = obs::GetCounter("serve.batch.formed");
  static obs::Histogram* batch_size = obs::GetHistogram("serve.batch.size");
  static obs::Counter* dedup = obs::GetCounter("serve.whatif.dedup_shared");
  static obs::Counter* timeouts = obs::GetCounter("serve.whatif.timeout");
  static obs::Gauge* depth = obs::GetGauge("serve.whatif.queue_depth");

  // Hold the window open until the batch fills (arrivals notify).
  if (config_.window_us > 0 && config_.max_batch > 1 && !stop_) {
    const auto window_end = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(config_.window_us);
    while (static_cast<int>(queue_.size()) < config_.max_batch && !stop_) {
      if (cv_.wait_until(lk, window_end) == std::cv_status::timeout) break;
    }
  }

  std::vector<BatchJob*> batch;
  while (!queue_.empty() &&
         static_cast<int>(batch.size()) < config_.max_batch) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  depth->Set(static_cast<int64_t>(queue_.size()));
  executing_ = true;
  lk.unlock();

  // Expire stale jobs, then dedup identical predicates so each unique
  // candidate is scored exactly once per batch.
  const auto now = std::chrono::steady_clock::now();
  std::vector<BatchJob*> unique;
  int live = 0;
  for (BatchJob* j : batch) {
    if (j->has_deadline && j->deadline <= now) {
      j->admit = AdmitResult::kTimeout;
      timeouts->Inc();
      continue;
    }
    j->admit = AdmitResult::kOk;
    ++live;
    auto rep = std::find_if(unique.begin(), unique.end(), [&](BatchJob* u) {
      return u->predicate == j->predicate;
    });
    if (rep == unique.end()) {
      unique.push_back(j);
    } else {
      j->rep = *rep;
      j->deduped = true;
      dedup->Inc();
    }
  }
  for (BatchJob* j : batch) {
    if (j->admit == AdmitResult::kOk) j->batch_size = live;
  }
  if (!unique.empty()) {
    formed->Inc();
    batch_size->Record(live);
    executor_(unique);
    for (BatchJob* j : batch) {
      if (j->rep != nullptr) j->outcome = j->rep->outcome;
    }
  }

  lk.lock();
  executing_ = false;
  for (BatchJob* j : batch) j->done = true;
  cv_.notify_all();
}

}  // namespace fume::serve
