#include "serve/protocol.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace fume::serve {

namespace {

using util::JsonValue;

Result<RequestOp> OpFromName(const std::string& name) {
  if (name == "health") return RequestOp::kHealth;
  if (name == "metrics") return RequestOp::kMetrics;
  if (name == "predict") return RequestOp::kPredict;
  if (name == "explain") return RequestOp::kExplain;
  if (name == "whatif") return RequestOp::kWhatIf;
  if (name == "stream_op") return RequestOp::kStreamOp;
  if (name == "checkpoint") return RequestOp::kCheckpoint;
  return Status::Invalid("unknown op \"" + name + "\"");
}

bool NeedsTenant(RequestOp op) {
  return op != RequestOp::kHealth && op != RequestOp::kMetrics;
}

Result<int64_t> IntField(const JsonValue& obj, const std::string& key,
                         int64_t fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || v->number_value != std::floor(v->number_value)) {
    return Status::Invalid("\"" + key + "\" must be an integer");
  }
  return static_cast<int64_t>(v->number_value);
}

Result<Predicate> ParsePredicateField(const JsonValue& req) {
  const JsonValue* arr = req.Find("predicate");
  if (arr == nullptr || !arr->is_array() || arr->array.empty()) {
    return Status::Invalid("whatif requires a non-empty \"predicate\" array");
  }
  std::vector<Literal> literals;
  literals.reserve(arr->array.size());
  for (const JsonValue& lit : arr->array) {
    if (!lit.is_object()) {
      return Status::Invalid("predicate entries must be objects");
    }
    const JsonValue* attr = lit.Find("attr");
    const JsonValue* value = lit.Find("value");
    const JsonValue* cmp = lit.Find("cmp");
    if (attr == nullptr || !attr->is_number() || value == nullptr ||
        !value->is_number() || cmp == nullptr || !cmp->is_string()) {
      return Status::Invalid(
          "predicate entries need numeric \"attr\"/\"value\" and string "
          "\"cmp\"");
    }
    Literal l;
    l.attr = static_cast<int>(attr->number_value);
    l.value = static_cast<int32_t>(value->number_value);
    FUME_ASSIGN_OR_RETURN(l.op, LiteralOpFromWireName(cmp->string_value));
    if (l.attr < 0) return Status::Invalid("literal attr must be >= 0");
    literals.push_back(l);
  }
  return Predicate(std::move(literals));
}

Result<std::vector<std::vector<int32_t>>> ParseRowsField(
    const JsonValue& req) {
  const JsonValue* arr = req.Find("rows");
  if (arr == nullptr || !arr->is_array() || arr->array.empty()) {
    return Status::Invalid("predict requires a non-empty \"rows\" array");
  }
  std::vector<std::vector<int32_t>> rows;
  rows.reserve(arr->array.size());
  for (const JsonValue& row : arr->array) {
    if (!row.is_array() || row.array.empty()) {
      return Status::Invalid("predict rows must be non-empty arrays of codes");
    }
    std::vector<int32_t> codes;
    codes.reserve(row.array.size());
    for (const JsonValue& code : row.array) {
      if (!code.is_number() ||
          code.number_value != std::floor(code.number_value)) {
        return Status::Invalid("row codes must be integers");
      }
      codes.push_back(static_cast<int32_t>(code.number_value));
    }
    rows.push_back(std::move(codes));
  }
  return rows;
}

void AppendRequestHead(std::string* out, int64_t id, const char* op) {
  out->append("{\"id\":");
  out->append(std::to_string(id));
  out->append(",\"op\":\"");
  out->append(op);
  out->append("\"");
}

void AppendTenant(std::string* out, const std::string& tenant) {
  out->append(",\"tenant\":");
  AppendJsonString(out, tenant);
}

void AppendDeadline(std::string* out, int64_t deadline_ms) {
  if (deadline_ms > 0) {
    out->append(",\"deadline_ms\":");
    out->append(std::to_string(deadline_ms));
  }
}

}  // namespace

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kHealth: return "health";
    case RequestOp::kMetrics: return "metrics";
    case RequestOp::kPredict: return "predict";
    case RequestOp::kExplain: return "explain";
    case RequestOp::kWhatIf: return "whatif";
    case RequestOp::kStreamOp: return "stream_op";
    case RequestOp::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

const char* LiteralOpWireName(LiteralOp op) {
  switch (op) {
    case LiteralOp::kEq: return "eq";
    case LiteralOp::kNe: return "ne";
    case LiteralOp::kLt: return "lt";
    case LiteralOp::kLe: return "le";
    case LiteralOp::kGe: return "ge";
    case LiteralOp::kGt: return "gt";
  }
  return "eq";
}

Result<LiteralOp> LiteralOpFromWireName(const std::string& name) {
  if (name == "eq") return LiteralOp::kEq;
  if (name == "ne") return LiteralOp::kNe;
  if (name == "lt") return LiteralOp::kLt;
  if (name == "le") return LiteralOp::kLe;
  if (name == "ge") return LiteralOp::kGe;
  if (name == "gt") return LiteralOp::kGt;
  return Status::Invalid("unknown literal cmp \"" + name + "\"");
}

Result<Request> ParseRequest(const std::string& line) {
  FUME_ASSIGN_OR_RETURN(JsonValue doc, util::ParseJson(line));
  if (!doc.is_object()) return Status::Invalid("request must be an object");
  Request req;
  FUME_ASSIGN_OR_RETURN(req.id, IntField(doc, "id", 0));
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::Invalid("request needs a string \"op\"");
  }
  FUME_ASSIGN_OR_RETURN(req.op, OpFromName(op->string_value));
  req.tenant = doc.StringOr("tenant", "");
  if (NeedsTenant(req.op) && req.tenant.empty()) {
    return Status::Invalid(std::string(RequestOpName(req.op)) +
                           " requires a \"tenant\"");
  }
  FUME_ASSIGN_OR_RETURN(req.deadline_ms, IntField(doc, "deadline_ms", 0));
  if (req.deadline_ms < 0) {
    return Status::Invalid("deadline_ms must be >= 0");
  }
  if (req.op == RequestOp::kPredict) {
    FUME_ASSIGN_OR_RETURN(req.rows, ParseRowsField(doc));
  } else if (req.op == RequestOp::kWhatIf) {
    FUME_ASSIGN_OR_RETURN(req.predicate, ParsePredicateField(doc));
  } else if (req.op == RequestOp::kStreamOp) {
    const JsonValue* text = doc.Find("line");
    if (text == nullptr || !text->is_string()) {
      return Status::Invalid("stream_op requires a string \"line\"");
    }
    FUME_ASSIGN_OR_RETURN(req.stream_op, stream::ParseOp(text->string_value));
  }
  return req;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

std::string ErrorResponse(int64_t id, const std::string& code,
                          const std::string& message) {
  std::string out = "{\"id\":";
  out.append(std::to_string(id));
  out.append(",\"ok\":false,\"code\":");
  AppendJsonString(&out, code);
  out.append(",\"error\":");
  AppendJsonString(&out, message);
  out.append("}\n");
  return out;
}

std::string EncodeHealthRequest(int64_t id) {
  std::string out;
  AppendRequestHead(&out, id, "health");
  out.append("}\n");
  return out;
}

std::string EncodeMetricsRequest(int64_t id) {
  std::string out;
  AppendRequestHead(&out, id, "metrics");
  out.append("}\n");
  return out;
}

std::string EncodePredictRequest(int64_t id, const std::string& tenant,
                                 const std::vector<std::vector<int32_t>>& rows,
                                 int64_t deadline_ms) {
  std::string out;
  AppendRequestHead(&out, id, "predict");
  AppendTenant(&out, tenant);
  AppendDeadline(&out, deadline_ms);
  out.append(",\"rows\":[");
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out.push_back(',');
    out.push_back('[');
    for (size_t j = 0; j < rows[r].size(); ++j) {
      if (j > 0) out.push_back(',');
      out.append(std::to_string(rows[r][j]));
    }
    out.push_back(']');
  }
  out.append("]}\n");
  return out;
}

std::string EncodeExplainRequest(int64_t id, const std::string& tenant) {
  std::string out;
  AppendRequestHead(&out, id, "explain");
  AppendTenant(&out, tenant);
  out.append("}\n");
  return out;
}

std::string EncodeWhatIfRequest(int64_t id, const std::string& tenant,
                                const Predicate& predicate,
                                int64_t deadline_ms) {
  std::string out;
  AppendRequestHead(&out, id, "whatif");
  AppendTenant(&out, tenant);
  AppendDeadline(&out, deadline_ms);
  out.append(",\"predicate\":[");
  const auto& literals = predicate.literals();
  for (size_t i = 0; i < literals.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append("{\"attr\":");
    out.append(std::to_string(literals[i].attr));
    out.append(",\"cmp\":\"");
    out.append(LiteralOpWireName(literals[i].op));
    out.append("\",\"value\":");
    out.append(std::to_string(literals[i].value));
    out.push_back('}');
  }
  out.append("]}\n");
  return out;
}

std::string EncodeStreamOpRequest(int64_t id, const std::string& tenant,
                                  const stream::StreamOp& op) {
  std::string out;
  AppendRequestHead(&out, id, "stream_op");
  AppendTenant(&out, tenant);
  out.append(",\"line\":");
  AppendJsonString(&out, stream::FormatOp(op));
  out.append("}\n");
  return out;
}

std::string EncodeCheckpointRequest(int64_t id, const std::string& tenant) {
  std::string out;
  AppendRequestHead(&out, id, "checkpoint");
  AppendTenant(&out, tenant);
  out.append("}\n");
  return out;
}

}  // namespace fume::serve
