#include "serve/server.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/query_scope.h"
#include "serve/protocol.h"
#include "util/check.h"

namespace fume::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll granularity for accept/read loops, so shutdown is observed quickly
/// without busy-waiting.
constexpr int kPollMs = 50;

struct EndpointMetrics {
  obs::Counter* requests;
  obs::Histogram* latency_us;
};

EndpointMetrics Endpoint(RequestOp op) {
  static EndpointMetrics health{obs::GetCounter("serve.health.requests"),
                                obs::GetHistogram("serve.health.latency_us")};
  static EndpointMetrics metrics{obs::GetCounter("serve.metrics.requests"),
                                 obs::GetHistogram("serve.metrics.latency_us")};
  static EndpointMetrics predict{obs::GetCounter("serve.predict.requests"),
                                 obs::GetHistogram("serve.predict.latency_us")};
  static EndpointMetrics explain{obs::GetCounter("serve.explain.requests"),
                                 obs::GetHistogram("serve.explain.latency_us")};
  static EndpointMetrics whatif{obs::GetCounter("serve.whatif.requests"),
                                obs::GetHistogram("serve.whatif.latency_us")};
  static EndpointMetrics stream{
      obs::GetCounter("serve.stream_op.requests"),
      obs::GetHistogram("serve.stream_op.latency_us")};
  static EndpointMetrics checkpoint{
      obs::GetCounter("serve.checkpoint.requests"),
      obs::GetHistogram("serve.checkpoint.latency_us")};
  switch (op) {
    case RequestOp::kHealth: return health;
    case RequestOp::kMetrics: return metrics;
    case RequestOp::kPredict: return predict;
    case RequestOp::kExplain: return explain;
    case RequestOp::kWhatIf: return whatif;
    case RequestOp::kStreamOp: return stream;
    case RequestOp::kCheckpoint: return checkpoint;
  }
  return health;
}

void AppendField(std::string* out, const char* key, int64_t v) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(std::to_string(v));
}

void AppendField(std::string* out, const char* key, double v) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  AppendJsonDouble(out, v);
}

void AppendField(std::string* out, const char* key, bool v) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(v ? "true" : "false");
}

void AppendField(std::string* out, const char* key, const std::string& v) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  AppendJsonString(out, v);
}

std::string OkHead(int64_t id) {
  std::string out = "{\"id\":";
  out.append(std::to_string(id));
  out.append(",\"ok\":true");
  return out;
}

std::string StatusError(int64_t id, const Status& status) {
  const char* code = "internal";
  switch (status.code()) {
    case StatusCode::kInvalidArgument: code = "bad_request"; break;
    case StatusCode::kKeyError: code = "unknown_tenant"; break;
    case StatusCode::kIOError: code = "io_error"; break;
    default: break;
  }
  return ErrorResponse(id, code, status.message());
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { Shutdown(); }

Status Server::RegisterTenant(std::string name, const Dataset& initial_train,
                              Dataset test, TenantConfig config) {
  if (started_.load()) {
    return Status::Invalid("tenants must be registered before Start()");
  }
  FUME_ASSIGN_OR_RETURN(auto tenant,
                        Tenant::Make(std::move(name), initial_train,
                                     std::move(test), std::move(config)));
  return registry_.Add(std::move(tenant));
}

Status Server::Start() {
  if (started_.exchange(true)) return Status::Invalid("already started");
  FUME_ASSIGN_OR_RETURN(listener_, util::ListenSocket::Listen(config_.port));
  port_ = listener_.port();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_.load() || shut_down_.exchange(true)) return;
  static obs::Counter* drains = obs::GetCounter("serve.shutdown.drains");
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // Connection threads observe stop_ at their next poll tick, finish the
  // request in flight, and exit; joining them IS the drain barrier.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) t.join();
  // All request traffic has ceased: flush tenant state.
  registry_.ShutdownAll();
  drains->Inc();
}

void Server::AcceptLoop() {
  static obs::Counter* accepted = obs::GetCounter("serve.conn.accepted");
  static obs::Counter* rejected = obs::GetCounter("serve.conn.rejected");
  static obs::Gauge* active = obs::GetGauge("serve.conn.active");
  while (!stop_.load()) {
    Result<util::Socket> sock = listener_.Accept(kPollMs);
    if (!sock.ok()) break;  // listener closed or failed
    if (!sock.ValueOrDie().valid()) continue;  // poll timeout
    util::Socket conn = std::move(sock).ValueOrDie();
    if (active_connections_.load() >= config_.max_connections) {
      rejected->Inc();
      const Status sent =
          conn.SendAll(ErrorResponse(0, "overloaded", "connection limit"));
      (void)sent;
      continue;  // conn closes on scope exit
    }
    accepted->Inc();
    active_connections_.fetch_add(1);
    active->Set(active_connections_.load());
    std::lock_guard<std::mutex> lk(conn_mu_);
    connections_.emplace_back(
        [this, c = std::move(conn)]() mutable { ConnectionLoop(std::move(c)); });
  }
}

void Server::ConnectionLoop(util::Socket sock) {
  static obs::Counter* received = obs::GetCounter("serve.requests.received");
  static obs::Counter* errors = obs::GetCounter("serve.requests.errors");
  static obs::Gauge* active = obs::GetGauge("serve.conn.active");
  std::string line;
  while (!stop_.load()) {
    Result<util::Socket::ReadResult> rr = sock.ReadLine(&line, kPollMs);
    if (!rr.ok() || rr.ValueOrDie() == util::Socket::ReadResult::kEof) break;
    if (rr.ValueOrDie() == util::Socket::ReadResult::kTimeout) continue;
    if (line.empty()) continue;
    received->Inc();
    std::string response;
    Result<Request> req = ParseRequest(line);
    if (!req.ok()) {
      response = ErrorResponse(0, "bad_request", req.status().message());
    } else {
      const EndpointMetrics ep = Endpoint(req.ValueOrDie().op);
      ep.requests->Inc();
      const auto start = Clock::now();
      response = Dispatch(req.ValueOrDie());
      ep.latency_us->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - start)
                                .count());
    }
    if (response.find("\"ok\":false") != std::string::npos) errors->Inc();
    if (config_.event_log != nullptr) {
      config_.event_log->Event("serve_request")
          .Field("op", req.ok() ? RequestOpName(req.ValueOrDie().op) : "parse")
          .Field("tenant", req.ok() ? req.ValueOrDie().tenant : "")
          .Field("ok", response.find("\"ok\":true") != std::string::npos)
          .Write();
    }
    if (!sock.SendAll(response).ok()) break;
  }
  active_connections_.fetch_sub(1);
  active->Set(active_connections_.load());
}

std::string Server::Dispatch(const Request& req) {
  if (req.op == RequestOp::kHealth) return HandleHealth(req);
  if (req.op == RequestOp::kMetrics) return HandleMetrics(req);
  Tenant* tenant = registry_.Find(req.tenant);
  if (tenant == nullptr) {
    return ErrorResponse(req.id, "unknown_tenant",
                         "no tenant \"" + req.tenant + "\"");
  }
  switch (req.op) {
    case RequestOp::kPredict: return HandlePredict(req, *tenant);
    case RequestOp::kExplain: return HandleExplain(req, *tenant);
    case RequestOp::kWhatIf: return HandleWhatIf(req, *tenant);
    case RequestOp::kStreamOp: return HandleStreamOp(req, *tenant);
    case RequestOp::kCheckpoint: return HandleCheckpoint(req, *tenant);
    default:
      return ErrorResponse(req.id, "bad_request", "unroutable op");
  }
}

std::string Server::HandleHealth(const Request& req) {
  std::string out = OkHead(req.id);
  AppendField(&out, "status", std::string("serving"));
  out.append(",\"tenants\":[");
  const std::vector<std::string> names = registry_.Names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out.push_back(',');
    Tenant* tenant = registry_.Find(names[i]);
    const std::shared_ptr<const TenantSnapshot> snap = tenant->snapshot();
    out.append("{\"name\":");
    AppendJsonString(&out, names[i]);
    AppendField(&out, "attrs",
                static_cast<int64_t>(tenant->schema().num_attributes()));
    AppendField(&out, "seq", snap->seq);
    AppendField(&out, "rows_live", snap->rows_live);
    out.push_back('}');
  }
  out.append("]}\n");
  return out;
}

std::string Server::HandleMetrics(const Request& req) {
  std::string out = OkHead(req.id);
  out.append(",\"metrics\":");
  out.append(obs::MetricsRegistry::Global().Snapshot().ToJson());
  out.append("}\n");
  return out;
}

std::string Server::HandlePredict(const Request& req, Tenant& tenant) {
  obs::QueryScope scope("serve.predict");
  const std::shared_ptr<const TenantSnapshot> snap = tenant.snapshot();
  Dataset rows(tenant.schema());
  for (const std::vector<int32_t>& codes : req.rows) {
    // Labels are irrelevant to prediction; 0 keeps AppendRow's validation.
    const Status st = rows.AppendRow(codes, 0);
    if (!st.ok()) {
      return ErrorResponse(req.id, "bad_request", st.message());
    }
  }
  std::vector<double> probs;
  std::vector<int> preds;
  if (snap->sharded.has_value()) {
    // Ensemble vote (soft or majority per the tenant's shard config).
    snap->sharded->Predict(rows, &probs, &preds);
  } else {
    probs = snap->forest.PredictProbAll(rows);
    preds.resize(probs.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      // Same 0.5 threshold as DareForest::PredictAll.
      preds[i] = probs[i] >= 0.5 ? 1 : 0;
    }
  }
  std::string out = OkHead(req.id);
  AppendField(&out, "seq", snap->seq);
  out.append(",\"predictions\":[");
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back(preds[i] != 0 ? '1' : '0');
  }
  out.append("],\"probs\":[");
  for (size_t i = 0; i < probs.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonDouble(&out, probs[i]);
  }
  out.append("]}\n");
  scope.Finish();
  return out;
}

std::string Server::HandleExplain(const Request& req, Tenant& tenant) {
  obs::QueryScope scope("serve.explain");
  const std::shared_ptr<const TenantSnapshot> snap = tenant.snapshot();
  std::string out = OkHead(req.id);
  AppendField(&out, "seq", snap->seq);
  AppendField(&out, "metric", snap->metric);
  AppendField(&out, "accuracy", snap->accuracy);
  AppendField(&out, "staleness", snap->staleness);
  AppendField(&out, "rows_live", snap->rows_live);
  AppendField(&out, "fair", snap->explanation == nullptr);
  out.append(",\"top_k\":[");
  if (snap->explanation != nullptr) {
    const Schema& schema = tenant.schema();
    for (size_t i = 0; i < snap->explanation->top_k.size(); ++i) {
      const AttributableSubset& s = snap->explanation->top_k[i];
      if (i > 0) out.push_back(',');
      out.append("{\"predicate\":");
      AppendJsonString(&out, s.predicate.ToString(schema));
      AppendField(&out, "support", s.support);
      AppendField(&out, "rows", s.num_rows);
      AppendField(&out, "phi", s.phi);
      AppendField(&out, "attribution", s.attribution);
      AppendField(&out, "new_fairness", s.new_fairness);
      AppendField(&out, "new_accuracy", s.new_accuracy);
      out.push_back('}');
    }
  }
  out.append("]}\n");
  scope.Finish();
  return out;
}

std::string Server::HandleWhatIf(const Request& req, Tenant& tenant) {
  obs::QueryScope scope("serve.whatif");
  const Schema& schema = tenant.schema();
  for (const Literal& lit : req.predicate.literals()) {
    if (lit.attr >= schema.num_attributes()) {
      return ErrorResponse(req.id, "bad_request",
                           "literal attr out of range");
    }
  }
  BatchJob job;
  job.predicate = req.predicate;
  const int64_t deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : config_.default_deadline_ms;
  if (deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  const AdmitResult admit = tenant.WhatIf(&job);
  if (admit != AdmitResult::kOk) {
    return ErrorResponse(req.id, AdmitResultName(admit),
                         admit == AdmitResult::kOverloaded
                             ? "whatif queue is full"
                             : "request not started in time");
  }
  std::string out = OkHead(req.id);
  AppendField(&out, "seq", job.outcome.snapshot_seq);
  AppendField(&out, "rows_matched", job.outcome.rows_matched);
  AppendField(&out, "batch_size", static_cast<int64_t>(job.batch_size));
  AppendField(&out, "deduped", job.deduped);
  AppendField(&out, "before_fairness", job.outcome.before_fairness);
  AppendField(&out, "before_accuracy", job.outcome.before_accuracy);
  AppendField(&out, "after_fairness", job.outcome.after_fairness);
  AppendField(&out, "after_accuracy", job.outcome.after_accuracy);
  AppendField(&out, "parity_reduction", job.outcome.parity_reduction);
  out.append("}\n");
  scope.Finish();
  return out;
}

std::string Server::HandleStreamOp(const Request& req, Tenant& tenant) {
  obs::QueryScope scope("serve.stream_op");
  Result<stream::OpOutcome> outcome = tenant.ApplyStreamOp(req.stream_op);
  if (!outcome.ok()) return StatusError(req.id, outcome.status());
  const stream::OpOutcome& o = outcome.ValueOrDie();
  std::string out = OkHead(req.id);
  AppendField(&out, "seq", o.seq);
  AppendField(&out, "kind", std::string(stream::OpKindName(o.kind)));
  AppendField(&out, "metric", o.metric);
  AppendField(&out, "accuracy", o.accuracy);
  AppendField(&out, "rows_live", o.rows_live);
  AppendField(&out, "searched", o.searched);
  AppendField(&out, "staleness", o.staleness_ops);
  out.append("}\n");
  scope.Finish();
  return out;
}

std::string Server::HandleCheckpoint(const Request& req, Tenant& tenant) {
  obs::QueryScope scope("serve.checkpoint");
  Result<std::string> path = tenant.Checkpoint();
  if (!path.ok()) return StatusError(req.id, path.status());
  std::string out = OkHead(req.id);
  AppendField(&out, "path", path.ValueOrDie());
  out.append("}\n");
  scope.Finish();
  return out;
}

}  // namespace fume::serve
