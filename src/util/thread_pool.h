// A persistent worker pool for level-synchronous fan-out.
//
// FUME's search evaluates one lattice level's jobs, applies the pruning
// rules, and repeats — spawning fresh std::threads per level costs more
// than the small levels it parallelizes. This pool keeps its workers
// parked on a condition variable between ParallelFor calls, so a search
// (or a whole stream-engine lifetime) pays thread creation exactly once.
//
// Determinism: ParallelFor only distributes loop indices; each index is
// claimed by exactly one worker via an atomic counter, and every write a
// worker makes is visible to the caller when ParallelFor returns. Callers
// that keep per-index (not per-worker-order) outputs therefore produce
// results independent of scheduling and thread count.

#ifndef FUME_UTIL_THREAD_POOL_H_
#define FUME_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fume {

namespace obs {
namespace internal {
struct ScopeHook;
}  // namespace internal
}  // namespace obs

namespace util {

class ThreadPool {
 public:
  /// A pool of `num_threads` total workers: `num_threads - 1` parked
  /// threads plus the calling thread, which participates as worker 0 in
  /// every ParallelFor. num_threads <= 1 creates no threads (ParallelFor
  /// runs inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(worker, index) for every index in [0, n), distributing
  /// indices across workers, and returns when all calls have completed.
  /// `worker` is in [0, num_threads()); concurrent calls with the same
  /// worker id never happen, so per-worker scratch needs no locking. Not
  /// reentrant: fn must not call ParallelFor on the same pool.
  ///
  /// Observability: the caller's active obs::QueryScope (if any) is
  /// propagated to every worker for the duration of its chunk, so metric
  /// deltas inside fn attribute to the enqueuing query regardless of which
  /// thread runs them; when tracing is enabled, a flow event connects the
  /// enqueue site to each worker's `pool.worker` span. Both are fully
  /// quiesced before ParallelFor returns — no worker touches the scope or
  /// the trace on this batch's behalf afterwards.
  void ParallelFor(size_t n, const std::function<void(int, size_t)>& fn);

  int num_threads() const { return static_cast<int>(threads_.size()) + 1; }

 private:
  void WorkerLoop(int worker);
  /// Drains batch `gen`'s indices. `fn`/`count` are the worker's own
  /// snapshot of that batch, taken under mutex_ (parked workers) or by
  /// being the publisher (worker 0) — never read from shared state here.
  void RunChunk(int worker, uint64_t gen,
                const std::function<void(int, size_t)>* fn, size_t count);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // guarded by mutex_
  bool stop_ = false;        // guarded by mutex_
  // Current batch, guarded by mutex_. Workers snapshot these together with
  // generation_ while holding the lock; nothing reads them lock-free.
  const std::function<void(int, size_t)>* job_fn_ = nullptr;
  size_t job_count_ = 0;
  /// Query scope active on the enqueuing thread when the batch was
  /// published; workers attach to it while running their chunk.
  obs::internal::ScopeHook* job_scope_ = nullptr;
  /// First flow id of the batch's reserved range (one id per parked
  /// worker), or 0 when tracing was off at publication.
  uint64_t job_flow_base_ = 0;
  /// Parked workers currently inside the published batch (snapshot taken
  /// through detach), guarded by mutex_. ParallelFor waits for this to hit
  /// zero as well as for all indices to complete: a straggler that claims
  /// no index still holds the batch's scope pointer until it detaches, and
  /// the scope may be destroyed as soon as ParallelFor returns.
  int active_workers_ = 0;
  /// Batch tag and claim counter in one word: generation_ (mod 2^32) in
  /// the upper 32 bits, the next unclaimed index in the lower 32. Claims
  /// are CAS increments that first verify the generation tag, so a
  /// straggler from a previous batch can neither consume one of the new
  /// batch's indices nor claim a stale index against the new batch.
  std::atomic<uint64_t> ticket_{0};
  std::atomic<size_t> completed_{0};
};

}  // namespace util
}  // namespace fume

#endif  // FUME_UTIL_THREAD_POOL_H_
