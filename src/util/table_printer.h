// ASCII table printer used by the benchmark harness to render the paper's
// tables (Table 2-9) with aligned columns.

#ifndef FUME_UTIL_TABLE_PRINTER_H_
#define FUME_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace fume {

/// \brief Collects rows of string cells and prints them with column-aligned
/// ASCII borders, e.g.
///
///   | Index | Patterns        | Support | Parity Reduction |
///   |-------|-----------------|---------|------------------|
///   | GS1   | (Savings = Low) |  5.00%  | 97.79%           |
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders to the stream. Rows shorter than the header are padded.
  void Print(std::ostream& os) const;

  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fume

#endif  // FUME_UTIL_TABLE_PRINTER_H_
