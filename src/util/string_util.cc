#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fume {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(std::string_view s, int* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

}  // namespace fume
