#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace fume {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Hash64(std::initializer_list<uint64_t> words) {
  uint64_t h = 0x51ed270b76b0b7c9ULL;
  for (uint64_t w : words) {
    h = Mix64(h ^ Mix64(w));
  }
  return h;
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes through SplitMix64 as recommended by the authors.
  uint64_t sm = seed;
  for (auto& lane : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    lane = Mix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FUME_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::NextInt(int lo, int hi) {
  FUME_DCHECK(lo <= hi);
  return lo + static_cast<int>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  FUME_DCHECK(k <= n);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(k));
  // Selection sampling (Knuth 3.4.2 algorithm S): O(n), ordered output.
  int seen = 0;
  for (int i = 0; i < n && static_cast<int>(out.size()) < k; ++i) {
    const int remaining_needed = k - static_cast<int>(out.size());
    const int remaining_pool = n - seen;
    if (NextDouble() * remaining_pool < remaining_needed) {
      out.push_back(i);
    }
    ++seen;
  }
  return out;
}

int Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    FUME_DCHECK(w >= 0.0);
    total += w;
  }
  FUME_DCHECK(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace fume
