// Wall-clock stopwatch used by the runtime benchmarks (Table 8, Figure 5),
// plus a thread-CPU-time variant for single-threaded micro-comparisons.

#ifndef FUME_UTIL_STOPWATCH_H_
#define FUME_UTIL_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace fume {

/// Monotonic wall-clock timer; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch for the calling thread. Unlike wall time it is not
/// inflated when the scheduler preempts the thread, so single-threaded
/// A/B throughput comparisons (bench_unlearn_kernel) stay stable on a
/// loaded machine. Meaningless across threads — time only the thread that
/// constructed it.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
#endif
  }

  double start_;
};

}  // namespace fume

#endif  // FUME_UTIL_STOPWATCH_H_
