// Wall-clock stopwatch used by the runtime benchmarks (Table 8, Figure 5).

#ifndef FUME_UTIL_STOPWATCH_H_
#define FUME_UTIL_STOPWATCH_H_

#include <chrono>

namespace fume {

/// Monotonic wall-clock timer; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fume

#endif  // FUME_UTIL_STOPWATCH_H_
