#include "util/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace fume::util {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::string(strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Result<Socket> Socket::Connect(const std::string& host, int port,
                               int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::IOError("cannot resolve " + host);
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::IOError(Errno("socket"));
  }
  // Blocking connect; the listener either accepts promptly or refuses.
  // timeout_ms guards the subsequent reads, not the handshake.
  (void)timeout_ms;
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return Status::IOError(Errno("connect to " + host + ":" + port_str));
  }
  SetNoDelay(fd);
  return Socket(fd);
}

Status Socket::SendAll(std::string_view data) {
  if (fd_ < 0) return Status::IOError("send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Socket::ReadResult> Socket::ReadLine(std::string* line,
                                            int timeout_ms) {
  if (fd_ < 0) return Status::IOError("read on closed socket");
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return ReadResult::kLine;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll"));
    }
    if (pr == 0) return ReadResult::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("recv"));
    }
    if (n == 0) {
      if (!buf_.empty()) {  // final unterminated line
        line->assign(std::move(buf_));
        buf_.clear();
        return ReadResult::kLine;
      }
      return ReadResult::kEof;
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ListenSocket> ListenSocket::Listen(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(Errno("bind port " + std::to_string(port)));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Status::IOError(Errno("listen"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IOError(Errno("getsockname"));
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = static_cast<int>(ntohs(bound.sin_port));
  return out;
}

Result<Socket> ListenSocket::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("accept on closed socket");
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll"));
    }
    if (pr == 0) return Socket();  // timeout: invalid socket, not an error
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("accept"));
    }
    SetNoDelay(cfd);
    return Socket(cfd);
  }
}

}  // namespace fume::util
