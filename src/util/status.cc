#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace fume {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kIndexError:
      return "Index error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ ? state_->msg : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  if (context != nullptr) {
    std::fprintf(stderr, "Aborting (%s): %s\n", context, ToString().c_str());
  } else {
    std::fprintf(stderr, "Aborting: %s\n", ToString().c_str());
  }
  std::abort();
}

}  // namespace fume
