// Small string helpers shared by CSV parsing and report formatting.

#ifndef FUME_UTIL_STRING_UTIL_H_
#define FUME_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fume {

/// Splits on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parses a double; returns false on malformed/trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses an int; returns false on malformed/trailing garbage.
bool ParseInt(std::string_view s, int* out);

/// Formats a double with the given number of decimals ("3.14").
std::string FormatDouble(double v, int decimals);

/// Formats a fraction as a percentage string ("12.70%").
std::string FormatPercent(double fraction, int decimals = 2);

}  // namespace fume

#endif  // FUME_UTIL_STRING_UTIL_H_
