#include "util/thread_pool.h"

#include "obs/metrics.h"
#include "obs/query_scope.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {
namespace util {

namespace {

constexpr int kGenShift = 32;
constexpr uint64_t kIndexMask = (uint64_t{1} << kGenShift) - 1;

constexpr uint64_t GenTag(uint64_t generation) {
  return generation & kIndexMask;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int spawn = num_threads - 1;
  if (spawn <= 0) return;
  static obs::Counter* started = obs::GetCounter("pool.threads_started");
  started->Inc(spawn);
  threads_.reserve(static_cast<size_t>(spawn));
  for (int t = 1; t <= spawn; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::RunChunk(int worker, uint64_t gen,
                          const std::function<void(int, size_t)>* fn,
                          size_t count) {
  // Every claim checks the generation tag before the CAS commits it, so a
  // straggler still here after ParallelFor published a new batch backs off
  // without consuming an index or double-counting completed_ — it re-parks
  // in WorkerLoop and picks the new batch up through the mutex. (A tag
  // collision would need the straggler to sleep across 2^32 batches.)
  uint64_t t = ticket_.load(std::memory_order_acquire);
  while (true) {
    if ((t >> kGenShift) != GenTag(gen)) return;  // new batch published
    const uint64_t i = t & kIndexMask;
    if (i >= count) return;  // batch fully claimed
    if (!ticket_.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      continue;  // t reloaded: re-check generation and bounds
    }
    (*fn)(worker, static_cast<size_t>(i));
    // The acq_rel RMW chain makes every job's writes visible to
    // ParallelFor's acquire load that observes completed_ == count.
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
    t = ticket_.load(std::memory_order_acquire);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  while (true) {
    uint64_t gen;
    const std::function<void(int, size_t)>* fn;
    size_t count;
    obs::internal::ScopeHook* scope;
    uint64_t flow_base;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      // Snapshot the batch while holding the lock: the {fn, count,
      // generation, scope, flow_base} tuple is immutable for as long as
      // this batch's indices are claimable, and the mutex orders it with
      // ParallelFor's publication.
      seen = generation_;
      gen = generation_;
      fn = job_fn_;
      count = job_count_;
      scope = job_scope_;
      flow_base = job_flow_base_;
      if (fn != nullptr) ++active_workers_;
    }
    // fn is null when this worker woke only after the batch had fully
    // completed (ParallelFor already cleared it): nothing left to claim.
    if (fn == nullptr) continue;
    {
      // Everything this worker does for the batch — metric deltas inside
      // fn and this thread's CPU time — attributes to the query scope that
      // was active on the enqueuing thread.
      obs::internal::ScopeAttachGuard attach(scope);
      if (flow_base != 0) {
        obs::TraceSpan span("pool.worker", {{"worker", worker}});
        obs::TraceFlowEnd("pool.batch",
                          flow_base + static_cast<uint64_t>(worker) - 1);
        RunChunk(worker, gen, fn, count);
      } else {
        RunChunk(worker, gen, fn, count);
      }
    }
    {
      // The detach above was this worker's last touch of the batch's scope;
      // announce it so ParallelFor can let the scope owner destroy it.
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(int, size_t)>& fn) {
  if (n == 0) return;
  static obs::Counter* calls = obs::GetCounter("pool.parallel_for.calls");
  static obs::Counter* jobs = obs::GetCounter("pool.jobs_dispatched");
  calls->Inc();
  jobs->Inc(static_cast<int64_t>(n));
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  FUME_CHECK(n <= kIndexMask);  // index must fit beside the generation tag
  uint64_t gen;
  const uint64_t spawn = static_cast<uint64_t>(threads_.size());
  const uint64_t flow_base =
      obs::TracingEnabled() ? obs::AllocateFlowIds(spawn) : 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    gen = ++generation_;
    job_fn_ = &fn;
    job_count_ = n;
    job_scope_ = obs::internal::tls_scope;
    job_flow_base_ = flow_base;
    completed_.store(0, std::memory_order_relaxed);
    // Publishing the tagged ticket retires the previous batch: from here
    // on, claims by stragglers of older generations fail their tag check.
    ticket_.store(GenTag(gen) << kGenShift, std::memory_order_release);
  }
  if (flow_base != 0) {
    // One flow per parked worker, started at the enqueue site: the arrow
    // runs from the caller's enclosing span to each worker's pool.worker
    // span (an unmatched start — a worker that never woke — is harmless).
    for (uint64_t w = 0; w < spawn; ++w) {
      obs::TraceFlowBegin("pool.batch", flow_base + w);
    }
  }
  work_cv_.notify_all();
  RunChunk(0, gen, &fn, n);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    // Both conditions matter: all indices done AND every worker detached
    // from the batch's query scope (see active_workers_ in the header).
    return completed_.load(std::memory_order_acquire) == n &&
           active_workers_ == 0;
  });
  job_fn_ = nullptr;
  job_scope_ = nullptr;
  job_flow_base_ = 0;
}

}  // namespace util
}  // namespace fume
