#include "util/thread_pool.h"

#include "obs/metrics.h"

namespace fume {
namespace util {

ThreadPool::ThreadPool(int num_threads) {
  const int spawn = num_threads - 1;
  if (spawn <= 0) return;
  static obs::Counter* started = obs::GetCounter("pool.threads_started");
  started->Inc(spawn);
  threads_.reserve(static_cast<size_t>(spawn));
  for (int t = 1; t <= spawn; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::RunChunk(int worker) {
  while (true) {
    // The acquire RMW synchronizes with ParallelFor's release store of 0,
    // so even a worker arriving late from the previous generation observes
    // the current job_fn_/job_count_ before touching them.
    const size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
    const size_t count = job_count_.load(std::memory_order_relaxed);
    if (i >= count) return;
    (*job_fn_)(worker, i);
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunChunk(worker);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(int, size_t)>& fn) {
  if (n == 0) return;
  static obs::Counter* calls = obs::GetCounter("pool.parallel_for.calls");
  static obs::Counter* jobs = obs::GetCounter("pool.jobs_dispatched");
  calls->Inc();
  jobs->Inc(static_cast<int64_t>(n));
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_count_.store(n, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    // Published last: a straggler from the previous batch synchronizes on
    // this store (see RunChunk) rather than on the mutex.
    next_.store(0, std::memory_order_release);
    ++generation_;
  }
  work_cv_.notify_all();
  RunChunk(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) == n;
  });
  job_fn_ = nullptr;
}

}  // namespace util
}  // namespace fume
