// Result<T>: value-or-Status, in the style of arrow::Result. A fallible
// function returning a value declares Result<T>; callers unwrap with
// FUME_ASSIGN_OR_RETURN or ValueOrDie().

#ifndef FUME_UTIL_RESULT_H_
#define FUME_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/status.h"

namespace fume {

/// \brief Holds either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from non-OK status (failure). An OK status is a programming
  /// error and is converted to an Internal error.
  Result(Status st) : repr_(std::move(st)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Value accessors; must only be called when ok().
  const T& ValueOrDie() const& {
    if (!ok()) std::get<Status>(repr_).Abort("Result::ValueOrDie");
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    if (!ok()) std::get<Status>(repr_).Abort("Result::ValueOrDie");
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    if (!ok()) std::get<Status>(repr_).Abort("Result::ValueOrDie");
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace fume

#define FUME_RESULT_CONCAT_(a, b) a##b
#define FUME_RESULT_CONCAT(a, b) FUME_RESULT_CONCAT_(a, b)

/// FUME_ASSIGN_OR_RETURN(auto x, Expr()): assigns the value on success,
/// propagates the Status on failure.
#define FUME_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  FUME_ASSIGN_OR_RETURN_IMPL(                                          \
      FUME_RESULT_CONCAT(_fume_result_, __LINE__), lhs, rexpr)

#define FUME_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#endif  // FUME_UTIL_RESULT_H_
