// Minimal blocking TCP socket wrappers for the serve subsystem: a listening
// socket and a connected stream socket with buffered newline-delimited line
// I/O. Plain POSIX sockets, no third-party deps. All waits go through
// poll(2) with a caller-supplied timeout so accept/read loops can observe a
// shutdown flag instead of blocking forever.

#ifndef FUME_UTIL_SOCKET_H_
#define FUME_UTIL_SOCKET_H_

#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace fume::util {

/// One connected stream socket (client side or accepted server side).
/// Move-only; closes its descriptor on destruction.
class Socket {
 public:
  enum class ReadResult {
    kLine,     // *line holds one complete line (newline stripped)
    kEof,      // peer closed cleanly with no pending line
    kTimeout,  // nothing arrived within timeout_ms
  };

  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric or resolvable host).
  static Result<Socket> Connect(const std::string& host, int port,
                                int timeout_ms = 5000);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes all of `data`, looping over partial writes. SIGPIPE-safe.
  Status SendAll(std::string_view data);

  /// Reads the next '\n'-terminated line into *line (terminator stripped).
  /// timeout_ms < 0 waits forever. Buffered: bytes beyond the first line
  /// are kept for the next call.
  Result<ReadResult> ReadLine(std::string* line, int timeout_ms = -1);

 private:
  int fd_ = -1;
  std::string buf_;
};

/// A listening TCP socket bound to 127.0.0.1.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens on `port` (0 picks an ephemeral port).
  static Result<ListenSocket> Listen(int port, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }
  void Close();

  /// Waits up to timeout_ms for a connection; returns an invalid Socket on
  /// timeout (not an error) so callers can poll a stop flag between waits.
  Result<Socket> Accept(int timeout_ms);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace fume::util

#endif  // FUME_UTIL_SOCKET_H_
