// Internal invariant checks. FUME_CHECK* abort on violation in all build
// types (invariant breakage in an unlearning structure must never be
// silently ignored); FUME_DCHECK* compile out in NDEBUG hot paths.

#ifndef FUME_UTIL_CHECK_H_
#define FUME_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define FUME_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "FUME_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define FUME_CHECK_OP(op, a, b)                                              \
  do {                                                                       \
    if (!((a)op(b))) {                                                       \
      std::fprintf(stderr, "FUME_CHECK failed at %s:%d: %s %s %s\n",         \
                   __FILE__, __LINE__, #a, #op, #b);                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define FUME_CHECK_EQ(a, b) FUME_CHECK_OP(==, a, b)
#define FUME_CHECK_NE(a, b) FUME_CHECK_OP(!=, a, b)
#define FUME_CHECK_LT(a, b) FUME_CHECK_OP(<, a, b)
#define FUME_CHECK_LE(a, b) FUME_CHECK_OP(<=, a, b)
#define FUME_CHECK_GT(a, b) FUME_CHECK_OP(>, a, b)
#define FUME_CHECK_GE(a, b) FUME_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define FUME_DCHECK(cond) \
  do {                    \
  } while (false)
#define FUME_DCHECK_EQ(a, b) FUME_DCHECK((a) == (b))
#else
#define FUME_DCHECK(cond) FUME_CHECK(cond)
#define FUME_DCHECK_EQ(a, b) FUME_CHECK_EQ(a, b)
#endif

#endif  // FUME_UTIL_CHECK_H_
