// Status: lightweight error propagation in the style of arrow::Status /
// rocksdb::Status. Core library paths do not throw; fallible operations return
// Status (or Result<T>, see result.h) and callers propagate with
// FUME_RETURN_NOT_OK.

#ifndef FUME_UTIL_STATUS_H_
#define FUME_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace fume {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,        // lookup of a name/id that does not exist
  kIndexError = 3,      // out-of-range row/column index
  kIOError = 4,         // file read/write failure
  kNotImplemented = 5,
  kInternal = 6,        // broken internal invariant
};

/// Returns a human-readable name ("Invalid argument", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a (code, message) pair.
///
/// OK carries no allocation; error states allocate a small state block. The
/// class is cheaply movable and copyable (copy duplicates the state block).
class Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers mirroring the StatusCode enumerators.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsIndexError() const { return code() == StatusCode::kIndexError; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use at call sites
  /// where failure is a programming error (e.g. examples, benches).
  void Abort(const char* context = nullptr) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // nullptr means OK
};

}  // namespace fume

/// Propagates a non-OK Status to the caller.
#define FUME_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::fume::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Aborts on a non-OK Status (for main()s and tests).
#define FUME_ABORT_NOT_OK(expr)                  \
  do {                                           \
    ::fume::Status _st = (expr);                 \
    if (!_st.ok()) _st.Abort(#expr);             \
  } while (false)

#endif  // FUME_UTIL_STATUS_H_
