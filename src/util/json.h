// A small strict JSON parser for tooling (bench artifact comparison,
// metrics-snapshot inspection in tests).
//
// The repo's hot paths *emit* JSON with hand-rolled writers (obs/, bench/)
// and never parse it; parsing only happens in offline tools, so this
// parser optimizes for being obviously correct, not fast. It accepts
// exactly the JSON our writers produce (RFC 8259 minus \uXXXX surrogate
// pairs, which are copied through verbatim) and rejects everything else
// with a position-annotated Status.

#ifndef FUME_UTIL_JSON_H_
#define FUME_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace fume {
namespace util {

/// \brief One parsed JSON value. A plain tagged struct — inspect `kind`
/// (or the is_*() helpers) and read the matching member.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Members in source order (duplicate keys are kept; Find returns the
  /// first).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr (also when not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Convenience typed lookups: the member's value when present and of
  /// the right kind, otherwise the fallback.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
Result<JsonValue> ParseJson(const std::string& text);

/// Reads and parses a JSON file.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace util
}  // namespace fume

#endif  // FUME_UTIL_JSON_H_
