// Deterministic random number generation.
//
// Everything random in this codebase is keyed: a node in a DaRE tree draws
// its random split from Hash64(seed, tree_id, node_path), never from shared
// mutable generator state. That makes tree construction a pure function of
// (data, seed) and is what lets the test suite assert exact unlearning as
// structural equality (DESIGN.md §2).

#ifndef FUME_UTIL_RNG_H_
#define FUME_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

namespace fume {

/// SplitMix64 mixing step: maps any 64-bit value to a well-distributed one.
uint64_t Mix64(uint64_t x);

/// Hashes a variable-length sequence of 64-bit words into one word.
uint64_t Hash64(std::initializer_list<uint64_t> words);

/// \brief xoshiro256** generator: small, fast, passes BigCrush.
///
/// Used for stream-style randomness (shuffles, synthetic data). For keyed
/// randomness use Hash64 directly.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Uniform int in [lo, hi] inclusive.
  int NextInt(int lo, int hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in increasing order
  /// (reservoir-free selection sampling).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Draws an index according to non-negative weights (sum need not be 1).
  int NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fume

#endif  // FUME_UTIL_RNG_H_
