#include "util/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fume {
namespace util {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& member : object) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    FUME_RETURN_NOT_OK(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::Invalid("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + literal + "'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    FUME_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Copied through verbatim: none of our writers emit \u except
          // for control characters, which tooling never needs decoded.
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          out->push_back('\\');
          out->push_back('u');
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Error("malformed \\u escape");
            }
            out->push_back(text_[pos_++]);
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (!Consume('0')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                    nullptr);
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    Status st;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        SkipWhitespace();
        if (!Consume('}')) {
          while (true) {
            SkipWhitespace();
            std::string key;
            FUME_RETURN_NOT_OK(ParseString(&key));
            SkipWhitespace();
            FUME_RETURN_NOT_OK(Expect(':'));
            JsonValue value;
            FUME_RETURN_NOT_OK(ParseValue(&value));
            out->object.emplace_back(std::move(key), std::move(value));
            SkipWhitespace();
            if (Consume(',')) continue;
            FUME_RETURN_NOT_OK(Expect('}'));
            break;
          }
        }
        st = Status::OK();
        break;
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        SkipWhitespace();
        if (!Consume(']')) {
          while (true) {
            JsonValue value;
            FUME_RETURN_NOT_OK(ParseValue(&value));
            out->array.push_back(std::move(value));
            SkipWhitespace();
            if (Consume(',')) continue;
            FUME_RETURN_NOT_OK(Expect(']'));
            break;
          }
        }
        st = Status::OK();
        break;
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        st = ParseString(&out->string_value);
        break;
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        st = ParseLiteral("true");
        break;
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        st = ParseLiteral("false");
        break;
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        st = ParseLiteral("null");
        break;
      default:
        st = ParseNumber(out);
        break;
    }
    --depth_;
    return st;
  }

  static constexpr int kMaxDepth = 128;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("error reading " + path);
  return ParseJson(buffer.str());
}

}  // namespace util
}  // namespace fume
