# Empty compiler generated dependencies file for policing_audit.
# This may be replaced when dependencies are built.
