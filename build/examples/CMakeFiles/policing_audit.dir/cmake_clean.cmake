file(REMOVE_RECURSE
  "CMakeFiles/policing_audit.dir/policing_audit.cc.o"
  "CMakeFiles/policing_audit.dir/policing_audit.cc.o.d"
  "policing_audit"
  "policing_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policing_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
