file(REMOVE_RECURSE
  "CMakeFiles/csv_audit.dir/csv_audit.cc.o"
  "CMakeFiles/csv_audit.dir/csv_audit.cc.o.d"
  "csv_audit"
  "csv_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
