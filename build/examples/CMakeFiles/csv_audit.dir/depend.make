# Empty dependencies file for csv_audit.
# This may be replaced when dependencies are built.
