# Empty compiler generated dependencies file for credit_audit.
# This may be replaced when dependencies are built.
