file(REMOVE_RECURSE
  "CMakeFiles/credit_audit.dir/credit_audit.cc.o"
  "CMakeFiles/credit_audit.dir/credit_audit.cc.o.d"
  "credit_audit"
  "credit_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
