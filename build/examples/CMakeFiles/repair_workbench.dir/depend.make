# Empty dependencies file for repair_workbench.
# This may be replaced when dependencies are built.
