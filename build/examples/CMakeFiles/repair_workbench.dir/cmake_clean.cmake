file(REMOVE_RECURSE
  "CMakeFiles/repair_workbench.dir/repair_workbench.cc.o"
  "CMakeFiles/repair_workbench.dir/repair_workbench.cc.o.d"
  "repair_workbench"
  "repair_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
