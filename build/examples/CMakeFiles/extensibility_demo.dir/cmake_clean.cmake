file(REMOVE_RECURSE
  "CMakeFiles/extensibility_demo.dir/extensibility_demo.cc.o"
  "CMakeFiles/extensibility_demo.dir/extensibility_demo.cc.o.d"
  "extensibility_demo"
  "extensibility_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensibility_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
