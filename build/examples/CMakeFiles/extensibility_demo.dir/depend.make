# Empty dependencies file for extensibility_demo.
# This may be replaced when dependencies are built.
