file(REMOVE_RECURSE
  "CMakeFiles/unlearning_demo.dir/unlearning_demo.cc.o"
  "CMakeFiles/unlearning_demo.dir/unlearning_demo.cc.o.d"
  "unlearning_demo"
  "unlearning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unlearning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
