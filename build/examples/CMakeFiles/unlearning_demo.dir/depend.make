# Empty dependencies file for unlearning_demo.
# This may be replaced when dependencies are built.
