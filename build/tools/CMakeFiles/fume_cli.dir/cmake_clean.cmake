file(REMOVE_RECURSE
  "CMakeFiles/fume_cli.dir/fume_cli.cc.o"
  "CMakeFiles/fume_cli.dir/fume_cli.cc.o.d"
  "fume_cli"
  "fume_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
