# Empty compiler generated dependencies file for fume_cli.
# This may be replaced when dependencies are built.
