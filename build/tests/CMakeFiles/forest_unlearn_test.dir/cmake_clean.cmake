file(REMOVE_RECURSE
  "CMakeFiles/forest_unlearn_test.dir/forest_unlearn_test.cc.o"
  "CMakeFiles/forest_unlearn_test.dir/forest_unlearn_test.cc.o.d"
  "forest_unlearn_test"
  "forest_unlearn_test.pdb"
  "forest_unlearn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_unlearn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
