# Empty dependencies file for forest_unlearn_test.
# This may be replaced when dependencies are built.
