# Empty dependencies file for forest_tree_test.
# This may be replaced when dependencies are built.
