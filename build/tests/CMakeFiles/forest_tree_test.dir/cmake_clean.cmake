file(REMOVE_RECURSE
  "CMakeFiles/forest_tree_test.dir/forest_tree_test.cc.o"
  "CMakeFiles/forest_tree_test.dir/forest_tree_test.cc.o.d"
  "forest_tree_test"
  "forest_tree_test.pdb"
  "forest_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
