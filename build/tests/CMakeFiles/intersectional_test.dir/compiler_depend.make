# Empty compiler generated dependencies file for intersectional_test.
# This may be replaced when dependencies are built.
