file(REMOVE_RECURSE
  "CMakeFiles/intersectional_test.dir/intersectional_test.cc.o"
  "CMakeFiles/intersectional_test.dir/intersectional_test.cc.o.d"
  "intersectional_test"
  "intersectional_test.pdb"
  "intersectional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersectional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
