# Empty dependencies file for forest_split_test.
# This may be replaced when dependencies are built.
