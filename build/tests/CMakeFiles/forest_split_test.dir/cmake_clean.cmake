file(REMOVE_RECURSE
  "CMakeFiles/forest_split_test.dir/forest_split_test.cc.o"
  "CMakeFiles/forest_split_test.dir/forest_split_test.cc.o.d"
  "forest_split_test"
  "forest_split_test.pdb"
  "forest_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
