file(REMOVE_RECURSE
  "CMakeFiles/fume_algorithm_test.dir/fume_algorithm_test.cc.o"
  "CMakeFiles/fume_algorithm_test.dir/fume_algorithm_test.cc.o.d"
  "fume_algorithm_test"
  "fume_algorithm_test.pdb"
  "fume_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
