# Empty dependencies file for fume_algorithm_test.
# This may be replaced when dependencies are built.
