file(REMOVE_RECURSE
  "CMakeFiles/slice_finder_test.dir/slice_finder_test.cc.o"
  "CMakeFiles/slice_finder_test.dir/slice_finder_test.cc.o.d"
  "slice_finder_test"
  "slice_finder_test.pdb"
  "slice_finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
