# Empty dependencies file for hedgecut_test.
# This may be replaced when dependencies are built.
