file(REMOVE_RECURSE
  "CMakeFiles/hedgecut_test.dir/hedgecut_test.cc.o"
  "CMakeFiles/hedgecut_test.dir/hedgecut_test.cc.o.d"
  "hedgecut_test"
  "hedgecut_test.pdb"
  "hedgecut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgecut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
