# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/forest_split_test[1]_include.cmake")
include("/root/repo/build/tests/forest_tree_test[1]_include.cmake")
include("/root/repo/build/tests/forest_unlearn_test[1]_include.cmake")
include("/root/repo/build/tests/fairness_test[1]_include.cmake")
include("/root/repo/build/tests/subset_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/attribution_test[1]_include.cmake")
include("/root/repo/build/tests/fume_algorithm_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/knn_test[1]_include.cmake")
include("/root/repo/build/tests/slice_finder_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/what_if_test[1]_include.cmake")
include("/root/repo/build/tests/hedgecut_test[1]_include.cmake")
include("/root/repo/build/tests/intersectional_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/gbdt_test[1]_include.cmake")
