file(REMOVE_RECURSE
  "../bench/bench_table9_pruning"
  "../bench/bench_table9_pruning.pdb"
  "CMakeFiles/bench_table9_pruning.dir/bench_table9_pruning.cc.o"
  "CMakeFiles/bench_table9_pruning.dir/bench_table9_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
