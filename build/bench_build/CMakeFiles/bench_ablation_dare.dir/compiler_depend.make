# Empty compiler generated dependencies file for bench_ablation_dare.
# This may be replaced when dependencies are built.
