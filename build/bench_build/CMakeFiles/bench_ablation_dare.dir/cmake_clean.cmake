file(REMOVE_RECURSE
  "../bench/bench_ablation_dare"
  "../bench/bench_ablation_dare.pdb"
  "CMakeFiles/bench_ablation_dare.dir/bench_ablation_dare.cc.o"
  "CMakeFiles/bench_ablation_dare.dir/bench_ablation_dare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
