# Empty compiler generated dependencies file for bench_baseline_slicefinder.
# This may be replaced when dependencies are built.
