file(REMOVE_RECURSE
  "../bench/bench_baseline_slicefinder"
  "../bench/bench_baseline_slicefinder.pdb"
  "CMakeFiles/bench_baseline_slicefinder.dir/bench_baseline_slicefinder.cc.o"
  "CMakeFiles/bench_baseline_slicefinder.dir/bench_baseline_slicefinder.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_slicefinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
