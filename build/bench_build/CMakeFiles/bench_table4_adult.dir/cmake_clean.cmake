file(REMOVE_RECURSE
  "../bench/bench_table4_adult"
  "../bench/bench_table4_adult.pdb"
  "CMakeFiles/bench_table4_adult.dir/bench_table4_adult.cc.o"
  "CMakeFiles/bench_table4_adult.dir/bench_table4_adult.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_adult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
