# Empty dependencies file for bench_table4_adult.
# This may be replaced when dependencies are built.
