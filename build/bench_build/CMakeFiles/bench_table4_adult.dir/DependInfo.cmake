
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_adult.cc" "bench_build/CMakeFiles/bench_table4_adult.dir/bench_table4_adult.cc.o" "gcc" "bench_build/CMakeFiles/bench_table4_adult.dir/bench_table4_adult.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/fume_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_subset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
