# Empty dependencies file for bench_table6_acs.
# This may be replaced when dependencies are built.
