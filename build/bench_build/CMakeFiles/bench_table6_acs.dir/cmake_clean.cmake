file(REMOVE_RECURSE
  "../bench/bench_table6_acs"
  "../bench/bench_table6_acs.pdb"
  "CMakeFiles/bench_table6_acs.dir/bench_table6_acs.cc.o"
  "CMakeFiles/bench_table6_acs.dir/bench_table6_acs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_acs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
