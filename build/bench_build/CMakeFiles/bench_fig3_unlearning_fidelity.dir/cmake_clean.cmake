file(REMOVE_RECURSE
  "../bench/bench_fig3_unlearning_fidelity"
  "../bench/bench_fig3_unlearning_fidelity.pdb"
  "CMakeFiles/bench_fig3_unlearning_fidelity.dir/bench_fig3_unlearning_fidelity.cc.o"
  "CMakeFiles/bench_fig3_unlearning_fidelity.dir/bench_fig3_unlearning_fidelity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_unlearning_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
