# Empty dependencies file for bench_fig3_unlearning_fidelity.
# This may be replaced when dependencies are built.
