# Empty dependencies file for bench_table3_german.
# This may be replaced when dependencies are built.
