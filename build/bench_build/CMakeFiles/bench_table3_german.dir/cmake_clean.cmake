file(REMOVE_RECURSE
  "../bench/bench_table3_german"
  "../bench/bench_table3_german.pdb"
  "CMakeFiles/bench_table3_german.dir/bench_table3_german.cc.o"
  "CMakeFiles/bench_table3_german.dir/bench_table3_german.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_german.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
