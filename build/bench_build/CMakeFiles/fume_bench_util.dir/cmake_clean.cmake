file(REMOVE_RECURSE
  "../lib/libfume_bench_util.a"
  "../lib/libfume_bench_util.pdb"
  "CMakeFiles/fume_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fume_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
