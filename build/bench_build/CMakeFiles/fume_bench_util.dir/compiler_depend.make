# Empty compiler generated dependencies file for fume_bench_util.
# This may be replaced when dependencies are built.
