file(REMOVE_RECURSE
  "../lib/libfume_bench_util.a"
)
