file(REMOVE_RECURSE
  "../bench/bench_table5_sqf"
  "../bench/bench_table5_sqf.pdb"
  "CMakeFiles/bench_table5_sqf.dir/bench_table5_sqf.cc.o"
  "CMakeFiles/bench_table5_sqf.dir/bench_table5_sqf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sqf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
