# Empty dependencies file for bench_table5_sqf.
# This may be replaced when dependencies are built.
