# Empty compiler generated dependencies file for bench_table7_meps.
# This may be replaced when dependencies are built.
