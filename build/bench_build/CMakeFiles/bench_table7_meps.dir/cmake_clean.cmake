file(REMOVE_RECURSE
  "../bench/bench_table7_meps"
  "../bench/bench_table7_meps.pdb"
  "CMakeFiles/bench_table7_meps.dir/bench_table7_meps.cc.o"
  "CMakeFiles/bench_table7_meps.dir/bench_table7_meps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_meps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
