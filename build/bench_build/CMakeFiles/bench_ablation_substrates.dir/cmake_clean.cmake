file(REMOVE_RECURSE
  "../bench/bench_ablation_substrates"
  "../bench/bench_ablation_substrates.pdb"
  "CMakeFiles/bench_ablation_substrates.dir/bench_ablation_substrates.cc.o"
  "CMakeFiles/bench_ablation_substrates.dir/bench_ablation_substrates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
