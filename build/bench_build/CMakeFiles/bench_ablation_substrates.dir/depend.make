# Empty dependencies file for bench_ablation_substrates.
# This may be replaced when dependencies are built.
