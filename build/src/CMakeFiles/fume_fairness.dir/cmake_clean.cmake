file(REMOVE_RECURSE
  "CMakeFiles/fume_fairness.dir/fairness/confusion.cc.o"
  "CMakeFiles/fume_fairness.dir/fairness/confusion.cc.o.d"
  "CMakeFiles/fume_fairness.dir/fairness/importance.cc.o"
  "CMakeFiles/fume_fairness.dir/fairness/importance.cc.o.d"
  "CMakeFiles/fume_fairness.dir/fairness/intersectional.cc.o"
  "CMakeFiles/fume_fairness.dir/fairness/intersectional.cc.o.d"
  "CMakeFiles/fume_fairness.dir/fairness/metrics.cc.o"
  "CMakeFiles/fume_fairness.dir/fairness/metrics.cc.o.d"
  "libfume_fairness.a"
  "libfume_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
