
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fairness/confusion.cc" "src/CMakeFiles/fume_fairness.dir/fairness/confusion.cc.o" "gcc" "src/CMakeFiles/fume_fairness.dir/fairness/confusion.cc.o.d"
  "/root/repo/src/fairness/importance.cc" "src/CMakeFiles/fume_fairness.dir/fairness/importance.cc.o" "gcc" "src/CMakeFiles/fume_fairness.dir/fairness/importance.cc.o.d"
  "/root/repo/src/fairness/intersectional.cc" "src/CMakeFiles/fume_fairness.dir/fairness/intersectional.cc.o" "gcc" "src/CMakeFiles/fume_fairness.dir/fairness/intersectional.cc.o.d"
  "/root/repo/src/fairness/metrics.cc" "src/CMakeFiles/fume_fairness.dir/fairness/metrics.cc.o" "gcc" "src/CMakeFiles/fume_fairness.dir/fairness/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fume_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
