# Empty compiler generated dependencies file for fume_fairness.
# This may be replaced when dependencies are built.
