file(REMOVE_RECURSE
  "libfume_fairness.a"
)
