file(REMOVE_RECURSE
  "libfume_knn.a"
)
