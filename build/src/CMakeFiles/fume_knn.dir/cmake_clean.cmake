file(REMOVE_RECURSE
  "CMakeFiles/fume_knn.dir/knn/knn.cc.o"
  "CMakeFiles/fume_knn.dir/knn/knn.cc.o.d"
  "libfume_knn.a"
  "libfume_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
