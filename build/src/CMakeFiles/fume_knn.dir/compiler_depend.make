# Empty compiler generated dependencies file for fume_knn.
# This may be replaced when dependencies are built.
