# Empty compiler generated dependencies file for fume_synth.
# This may be replaced when dependencies are built.
