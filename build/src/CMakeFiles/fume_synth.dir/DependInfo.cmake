
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/acs_income.cc" "src/CMakeFiles/fume_synth.dir/synth/acs_income.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/acs_income.cc.o.d"
  "/root/repo/src/synth/adult.cc" "src/CMakeFiles/fume_synth.dir/synth/adult.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/adult.cc.o.d"
  "/root/repo/src/synth/common.cc" "src/CMakeFiles/fume_synth.dir/synth/common.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/common.cc.o.d"
  "/root/repo/src/synth/german.cc" "src/CMakeFiles/fume_synth.dir/synth/german.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/german.cc.o.d"
  "/root/repo/src/synth/meps.cc" "src/CMakeFiles/fume_synth.dir/synth/meps.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/meps.cc.o.d"
  "/root/repo/src/synth/parametric.cc" "src/CMakeFiles/fume_synth.dir/synth/parametric.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/parametric.cc.o.d"
  "/root/repo/src/synth/planted.cc" "src/CMakeFiles/fume_synth.dir/synth/planted.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/planted.cc.o.d"
  "/root/repo/src/synth/registry.cc" "src/CMakeFiles/fume_synth.dir/synth/registry.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/registry.cc.o.d"
  "/root/repo/src/synth/sqf.cc" "src/CMakeFiles/fume_synth.dir/synth/sqf.cc.o" "gcc" "src/CMakeFiles/fume_synth.dir/synth/sqf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fume_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
