file(REMOVE_RECURSE
  "CMakeFiles/fume_synth.dir/synth/acs_income.cc.o"
  "CMakeFiles/fume_synth.dir/synth/acs_income.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/adult.cc.o"
  "CMakeFiles/fume_synth.dir/synth/adult.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/common.cc.o"
  "CMakeFiles/fume_synth.dir/synth/common.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/german.cc.o"
  "CMakeFiles/fume_synth.dir/synth/german.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/meps.cc.o"
  "CMakeFiles/fume_synth.dir/synth/meps.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/parametric.cc.o"
  "CMakeFiles/fume_synth.dir/synth/parametric.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/planted.cc.o"
  "CMakeFiles/fume_synth.dir/synth/planted.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/registry.cc.o"
  "CMakeFiles/fume_synth.dir/synth/registry.cc.o.d"
  "CMakeFiles/fume_synth.dir/synth/sqf.cc.o"
  "CMakeFiles/fume_synth.dir/synth/sqf.cc.o.d"
  "libfume_synth.a"
  "libfume_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
