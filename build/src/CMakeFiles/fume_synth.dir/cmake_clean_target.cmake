file(REMOVE_RECURSE
  "libfume_synth.a"
)
