file(REMOVE_RECURSE
  "libfume_core.a"
)
