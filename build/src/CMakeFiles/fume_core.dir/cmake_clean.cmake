file(REMOVE_RECURSE
  "CMakeFiles/fume_core.dir/core/attribution.cc.o"
  "CMakeFiles/fume_core.dir/core/attribution.cc.o.d"
  "CMakeFiles/fume_core.dir/core/baseline.cc.o"
  "CMakeFiles/fume_core.dir/core/baseline.cc.o.d"
  "CMakeFiles/fume_core.dir/core/fume.cc.o"
  "CMakeFiles/fume_core.dir/core/fume.cc.o.d"
  "CMakeFiles/fume_core.dir/core/removal_method.cc.o"
  "CMakeFiles/fume_core.dir/core/removal_method.cc.o.d"
  "CMakeFiles/fume_core.dir/core/report.cc.o"
  "CMakeFiles/fume_core.dir/core/report.cc.o.d"
  "CMakeFiles/fume_core.dir/core/slice_finder.cc.o"
  "CMakeFiles/fume_core.dir/core/slice_finder.cc.o.d"
  "CMakeFiles/fume_core.dir/repair/what_if.cc.o"
  "CMakeFiles/fume_core.dir/repair/what_if.cc.o.d"
  "libfume_core.a"
  "libfume_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
