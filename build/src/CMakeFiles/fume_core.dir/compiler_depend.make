# Empty compiler generated dependencies file for fume_core.
# This may be replaced when dependencies are built.
