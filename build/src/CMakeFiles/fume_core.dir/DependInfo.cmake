
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribution.cc" "src/CMakeFiles/fume_core.dir/core/attribution.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/core/attribution.cc.o.d"
  "/root/repo/src/core/baseline.cc" "src/CMakeFiles/fume_core.dir/core/baseline.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/core/baseline.cc.o.d"
  "/root/repo/src/core/fume.cc" "src/CMakeFiles/fume_core.dir/core/fume.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/core/fume.cc.o.d"
  "/root/repo/src/core/removal_method.cc" "src/CMakeFiles/fume_core.dir/core/removal_method.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/core/removal_method.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/fume_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/slice_finder.cc" "src/CMakeFiles/fume_core.dir/core/slice_finder.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/core/slice_finder.cc.o.d"
  "/root/repo/src/repair/what_if.cc" "src/CMakeFiles/fume_core.dir/repair/what_if.cc.o" "gcc" "src/CMakeFiles/fume_core.dir/repair/what_if.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fume_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_subset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
