file(REMOVE_RECURSE
  "libfume_util.a"
)
