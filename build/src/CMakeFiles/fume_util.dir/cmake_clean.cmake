file(REMOVE_RECURSE
  "CMakeFiles/fume_util.dir/util/rng.cc.o"
  "CMakeFiles/fume_util.dir/util/rng.cc.o.d"
  "CMakeFiles/fume_util.dir/util/status.cc.o"
  "CMakeFiles/fume_util.dir/util/status.cc.o.d"
  "CMakeFiles/fume_util.dir/util/string_util.cc.o"
  "CMakeFiles/fume_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/fume_util.dir/util/table_printer.cc.o"
  "CMakeFiles/fume_util.dir/util/table_printer.cc.o.d"
  "libfume_util.a"
  "libfume_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
