# Empty dependencies file for fume_data.
# This may be replaced when dependencies are built.
