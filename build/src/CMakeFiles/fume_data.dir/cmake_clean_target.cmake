file(REMOVE_RECURSE
  "libfume_data.a"
)
