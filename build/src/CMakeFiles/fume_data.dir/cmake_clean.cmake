file(REMOVE_RECURSE
  "CMakeFiles/fume_data.dir/data/csv.cc.o"
  "CMakeFiles/fume_data.dir/data/csv.cc.o.d"
  "CMakeFiles/fume_data.dir/data/dataset.cc.o"
  "CMakeFiles/fume_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/fume_data.dir/data/discretizer.cc.o"
  "CMakeFiles/fume_data.dir/data/discretizer.cc.o.d"
  "CMakeFiles/fume_data.dir/data/schema.cc.o"
  "CMakeFiles/fume_data.dir/data/schema.cc.o.d"
  "CMakeFiles/fume_data.dir/data/split.cc.o"
  "CMakeFiles/fume_data.dir/data/split.cc.o.d"
  "libfume_data.a"
  "libfume_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
