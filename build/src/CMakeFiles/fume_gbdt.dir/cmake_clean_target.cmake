file(REMOVE_RECURSE
  "libfume_gbdt.a"
)
