# Empty dependencies file for fume_gbdt.
# This may be replaced when dependencies are built.
