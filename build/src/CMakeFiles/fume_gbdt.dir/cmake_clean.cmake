file(REMOVE_RECURSE
  "CMakeFiles/fume_gbdt.dir/gbdt/gbdt.cc.o"
  "CMakeFiles/fume_gbdt.dir/gbdt/gbdt.cc.o.d"
  "libfume_gbdt.a"
  "libfume_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
