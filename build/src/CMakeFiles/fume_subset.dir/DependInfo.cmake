
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subset/lattice.cc" "src/CMakeFiles/fume_subset.dir/subset/lattice.cc.o" "gcc" "src/CMakeFiles/fume_subset.dir/subset/lattice.cc.o.d"
  "/root/repo/src/subset/literal.cc" "src/CMakeFiles/fume_subset.dir/subset/literal.cc.o" "gcc" "src/CMakeFiles/fume_subset.dir/subset/literal.cc.o.d"
  "/root/repo/src/subset/posting_index.cc" "src/CMakeFiles/fume_subset.dir/subset/posting_index.cc.o" "gcc" "src/CMakeFiles/fume_subset.dir/subset/posting_index.cc.o.d"
  "/root/repo/src/subset/predicate.cc" "src/CMakeFiles/fume_subset.dir/subset/predicate.cc.o" "gcc" "src/CMakeFiles/fume_subset.dir/subset/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fume_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
