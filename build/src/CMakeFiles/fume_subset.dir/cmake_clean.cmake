file(REMOVE_RECURSE
  "CMakeFiles/fume_subset.dir/subset/lattice.cc.o"
  "CMakeFiles/fume_subset.dir/subset/lattice.cc.o.d"
  "CMakeFiles/fume_subset.dir/subset/literal.cc.o"
  "CMakeFiles/fume_subset.dir/subset/literal.cc.o.d"
  "CMakeFiles/fume_subset.dir/subset/posting_index.cc.o"
  "CMakeFiles/fume_subset.dir/subset/posting_index.cc.o.d"
  "CMakeFiles/fume_subset.dir/subset/predicate.cc.o"
  "CMakeFiles/fume_subset.dir/subset/predicate.cc.o.d"
  "libfume_subset.a"
  "libfume_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
