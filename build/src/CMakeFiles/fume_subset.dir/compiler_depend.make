# Empty compiler generated dependencies file for fume_subset.
# This may be replaced when dependencies are built.
