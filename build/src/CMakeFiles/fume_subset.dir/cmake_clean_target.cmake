file(REMOVE_RECURSE
  "libfume_subset.a"
)
