# Empty compiler generated dependencies file for fume_hedgecut.
# This may be replaced when dependencies are built.
