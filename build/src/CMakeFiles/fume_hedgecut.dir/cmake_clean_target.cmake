file(REMOVE_RECURSE
  "libfume_hedgecut.a"
)
