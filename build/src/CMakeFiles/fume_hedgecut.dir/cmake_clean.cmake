file(REMOVE_RECURSE
  "CMakeFiles/fume_hedgecut.dir/hedgecut/hedgecut.cc.o"
  "CMakeFiles/fume_hedgecut.dir/hedgecut/hedgecut.cc.o.d"
  "libfume_hedgecut.a"
  "libfume_hedgecut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_hedgecut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
