file(REMOVE_RECURSE
  "libfume_forest.a"
)
