
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forest/forest.cc" "src/CMakeFiles/fume_forest.dir/forest/forest.cc.o" "gcc" "src/CMakeFiles/fume_forest.dir/forest/forest.cc.o.d"
  "/root/repo/src/forest/serialize.cc" "src/CMakeFiles/fume_forest.dir/forest/serialize.cc.o" "gcc" "src/CMakeFiles/fume_forest.dir/forest/serialize.cc.o.d"
  "/root/repo/src/forest/split_stats.cc" "src/CMakeFiles/fume_forest.dir/forest/split_stats.cc.o" "gcc" "src/CMakeFiles/fume_forest.dir/forest/split_stats.cc.o.d"
  "/root/repo/src/forest/tree.cc" "src/CMakeFiles/fume_forest.dir/forest/tree.cc.o" "gcc" "src/CMakeFiles/fume_forest.dir/forest/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fume_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fume_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
