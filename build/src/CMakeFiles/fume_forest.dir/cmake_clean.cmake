file(REMOVE_RECURSE
  "CMakeFiles/fume_forest.dir/forest/forest.cc.o"
  "CMakeFiles/fume_forest.dir/forest/forest.cc.o.d"
  "CMakeFiles/fume_forest.dir/forest/serialize.cc.o"
  "CMakeFiles/fume_forest.dir/forest/serialize.cc.o.d"
  "CMakeFiles/fume_forest.dir/forest/split_stats.cc.o"
  "CMakeFiles/fume_forest.dir/forest/split_stats.cc.o.d"
  "CMakeFiles/fume_forest.dir/forest/tree.cc.o"
  "CMakeFiles/fume_forest.dir/forest/tree.cc.o.d"
  "libfume_forest.a"
  "libfume_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fume_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
