# Empty dependencies file for fume_forest.
# This may be replaced when dependencies are built.
