// Streaming audit: production models retrain on growing data. Because the
// DaRE forest supports EXACT incremental addition (AddData) as well as
// deletion, a deployed model can ingest each new batch without retraining
// while a fairness monitor re-checks the violation — and triggers a FUME
// explanation the moment disparity crosses a threshold.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "synth/datasets.h"
#include "util/string_util.h"

int main() {
  using namespace fume;

  // Launch-time data: genuinely fair (equal base rates, no cohorts). The
  // same SynthModel with a planted biased cohort generates the later
  // arrival batches — simulating an upstream policy change.
  synth::SynthModel spec;
  spec.name = "streaming";
  spec.sensitive_attr = "Group";
  spec.privileged_category = "Privileged";
  spec.protected_fraction = 0.4;
  spec.priv_base = 0.60;
  spec.prot_base = 0.60;
  spec.label_noise = 0.01;
  auto add_attr = [&spec](const std::string& name,
                          std::vector<std::string> cats,
                          std::vector<double> weights) {
    synth::AttrSpec a;
    a.name = name;
    a.categories = std::move(cats);
    a.priv_weights = std::move(weights);
    spec.attrs.push_back(std::move(a));
  };
  add_attr("Group", {"Protected", "Privileged"}, {0.5, 0.5});
  add_attr("A", {"a0", "a1", "a2"}, {0.45, 0.33, 0.22});
  add_attr("B", {"b0", "b1", "b2"}, {0.40, 0.33, 0.27});
  add_attr("C", {"c0", "c1"}, {0.5, 0.5});
  add_attr("D", {"d0", "d1", "d2", "d3"}, {0.25, 0.25, 0.25, 0.25});

  auto launch = synth::GenerateFromModel(spec, 4200, /*seed=*/12);
  FUME_ABORT_NOT_OK(launch.status());
  std::vector<int64_t> initial_rows, monitor_rows;
  for (int64_t r = 0; r < launch->data.num_rows(); ++r) {
    (r % 2 == 0 ? initial_rows : monitor_rows).push_back(r);
  }
  Dataset train = launch->data.Select(initial_rows);
  const Dataset monitor = launch->data.Select(monitor_rows);
  const synth::DatasetBundle& bundle = *launch;

  // The drifted arrival process: protected members of (A = a1 AND B = b2)
  // suddenly receive far worse outcomes.
  synth::SynthModel drift_spec = spec;
  drift_spec.prot_base = 0.55;
  drift_spec.cohorts = {
      {{{"A", "a1"}, {"B", "b2"}}, /*protected_delta=*/-0.60,
       /*privileged_delta=*/+0.15},
  };
  auto drift_bundle = synth::GenerateFromModel(drift_spec, 4800, /*seed=*/77);
  FUME_ABORT_NOT_OK(drift_bundle.status());

  ForestConfig config;
  config.num_trees = 20;
  config.max_depth = 7;
  config.random_depth = 2;
  config.seed = 31;
  auto model = DareForest::Train(train, config);
  FUME_ABORT_NOT_OK(model.status());

  const double initial_fairness = ComputeFairness(
      *model, monitor, bundle.group, FairnessMetric::kStatisticalParity);
  // Alert when disparity grows meaningfully beyond the launch baseline.
  const double alert_threshold =
      std::max(0.10, 1.5 * std::abs(initial_fairness));
  std::cout << "launch: statistical parity "
            << FormatDouble(initial_fairness, 4) << ", alert threshold |F| > "
            << FormatDouble(alert_threshold, 4) << "\n\n";
  std::cout << "month | trained rows | statistical parity | accuracy | action\n";
  const int64_t batch_size = 800;
  for (int month = 0; month < 6; ++month) {
    // Ingest this month's batch without retraining.
    std::vector<int64_t> batch;
    for (int64_t i = month * batch_size;
         i < (month + 1) * batch_size &&
         i < drift_bundle->data.num_rows();
         ++i) {
      batch.push_back(i);
    }
    const Dataset arriving = drift_bundle->data.Select(batch);
    FUME_ABORT_NOT_OK(model->AddData(arriving).status());
    // Keep a matching training-set view for FUME (store order: old + new).
    {
      Dataset merged(train.schema());
      std::vector<int32_t> codes(static_cast<size_t>(train.num_attributes()));
      for (const Dataset* part :
           {static_cast<const Dataset*>(&train), &arriving}) {
        for (int64_t r = 0; r < part->num_rows(); ++r) {
          for (int j = 0; j < part->num_attributes(); ++j) {
            codes[static_cast<size_t>(j)] = part->Code(r, j);
          }
          FUME_ABORT_NOT_OK(merged.AppendRow(codes, part->Label(r)));
        }
      }
      train = std::move(merged);
    }

    const double fairness = ComputeFairness(
        *model, monitor, bundle.group, FairnessMetric::kStatisticalParity);
    const bool alert = fairness < -alert_threshold;
    std::cout << "  " << month + 1 << "   | " << train.num_rows() << "        | "
              << FormatDouble(fairness, 4) << "            | "
              << FormatPercent(model->Accuracy(monitor)) << "  | "
              << (alert ? "ALERT -> run FUME" : "ok") << "\n";

    if (alert) {
      FumeConfig fume_config;
      fume_config.top_k = 3;
      fume_config.support_min = 0.02;
      fume_config.support_max = 0.25;
      fume_config.group = bundle.group;
      fume_config.lattice.excluded_attrs = {bundle.group.sensitive_attr};
      auto result =
          ExplainFairnessViolation(*model, train, monitor, fume_config);
      if (result.ok()) {
        PrintTopK(*result, train.schema(), "M", std::cout);
      } else {
        std::cout << result.status().ToString() << "\n";
      }
      break;
    }
  }
  std::cout << "\nThe monitor caught the drift introduced by the biased "
               "arrival batches; FUME names the cohort (the planted one is "
               "(A = a1) AND (B = b2)).\n";
  return 0;
}
