// Repair workbench: after FUME points at a cohort, which FIX is best? This
// example compares three interventions on the top attributable subset —
// removing it, correcting its protected members' labels, and upweighting it
// — all evaluated without retraining, via exact unlearning + exact
// incremental addition.

#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "repair/what_if.h"
#include "synth/datasets.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace fume;

  synth::SynthOptions opts;
  opts.seed = 4;
  auto bundle = synth::MakeGermanCredit(opts);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  forest_config.random_depth = 2;
  forest_config.seed = 31;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());

  FumeConfig config;
  config.top_k = 1;
  config.support_min = 0.05;
  config.support_max = 0.15;
  config.group = bundle->group;
  auto fume_result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  FUME_ABORT_NOT_OK(fume_result.status());
  if (fume_result->top_k.empty()) {
    std::cout << "no attributable subset found\n";
    return 0;
  }
  const Predicate& subset = fume_result->top_k[0].predicate;
  std::cout << "Auditing the top attributable subset:\n  "
            << subset.ToString(split->train.schema()) << "\n\n";
  PrintViolationSummary(*fume_result, config.metric, std::cout);
  std::cout << "\n";

  TablePrinter table({"Intervention", "Rows touched", "Parity reduction",
                      "Fairness after", "Accuracy after"});
  auto add_row = [&](const std::string& name,
                     const Result<WhatIfResult>& r) {
    if (!r.ok()) {
      table.AddRow({name, "-", r.status().ToString(), "-", "-"});
      return;
    }
    table.AddRow({name, std::to_string(r->rows_affected),
                  FormatPercent(r->parity_reduction),
                  FormatDouble(r->after.fairness, 4),
                  FormatPercent(r->after.accuracy)});
  };
  add_row("remove subset",
          WhatIfRemove(*model, split->train, split->test, bundle->group,
                       config.metric, subset));
  add_row("relabel: protected members favorable",
          WhatIfRelabel(*model, split->train, split->test, bundle->group,
                        config.metric, subset,
                        RelabelPolicy::kSetProtectedPositive));
  add_row("relabel: flip all",
          WhatIfRelabel(*model, split->train, split->test, bundle->group,
                        config.metric, subset, RelabelPolicy::kFlipAll));
  add_row("upweight subset 2x",
          WhatIfDuplicate(*model, split->train, split->test, bundle->group,
                          config.metric, subset, /*extra_copies=*/1));
  table.Print(std::cout);
  std::cout <<
      "\nEvery row is an exact counterfactual model (unlearn + re-add), so "
      "the steward can choose the least invasive fix with retraining-grade "
      "confidence.\n";
  return 0;
}
