// Policing audit (the paper's SQF study): the frisk-prediction model is
// race-disparate, yet the strongest explanation FUME surfaces is phrased in
// terms of Sex — a *proxy attribute* correlated with race. The example
// demonstrates the proxy-discovery workflow, including the permutation
// feature-importance deviation analysis of §6.3.

#include <algorithm>
#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "fairness/importance.h"
#include "synth/datasets.h"
#include "util/string_util.h"

int main() {
  using namespace fume;

  synth::SynthOptions opts;
  opts.num_rows = 12000;  // scaled from the paper's 72,546 for example speed
  opts.seed = 6;
  auto bundle = synth::MakeSqf(opts);
  FUME_ABORT_NOT_OK(bundle.status());

  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 1;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  forest_config.random_depth = 2;
  forest_config.seed = 13;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());

  std::cout << "=== Stop-Question-Frisk audit (synthetic; sensitive "
               "attribute: Race) ===\n\n";

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.05;
  config.support_max = 0.15;
  config.max_literals = 2;
  config.group = bundle->group;
  // Search only non-sensitive attributes: we want the proxies, not
  // "Race = Non-white" itself.
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};
  auto result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  FUME_ABORT_NOT_OK(result.status());

  PrintViolationSummary(*result, config.metric, std::cout);
  PrintTopK(*result, split->train.schema(), "SS", std::cout);
  std::cout << "\n";

  if (result->top_k.empty()) return 0;

  // Feature-importance deviation: delete the top subset and compare
  // permutation importances before/after (the paper's explanation of WHY
  // Sex=Female rows drive the race disparity).
  const AttributableSubset& top = result->top_k[0];
  std::cout << "Deleting " << top.predicate.ToString(split->train.schema())
            << " and comparing permutation feature importance:\n";
  ImportanceOptions iopts;
  iopts.num_repeats = 3;
  auto before = PermutationImportance(*model, split->test, iopts);

  DareForest what_if = model->Clone();
  {
    std::vector<int32_t> matched = top.predicate.MatchingRows(split->train);
    FUME_ABORT_NOT_OK(what_if.DeleteRows(
        std::vector<RowId>(matched.begin(), matched.end())));
  }
  auto after = PermutationImportance(what_if, split->test, iopts);

  std::cout << "  top features before -> after (importance = mean accuracy "
               "drop when shuffled):\n";
  for (size_t i = 0; i < std::min<size_t>(6, before.size()); ++i) {
    const double shift = ImportanceShift(before, after, before[i].attr);
    std::cout << "    " << before[i].name << ": "
              << FormatDouble(before[i].importance, 4) << " -> "
              << FormatDouble(
                     [&] {
                       for (const auto& fi : after) {
                         if (fi.attr == before[i].attr) return fi.importance;
                       }
                       return 0.0;
                     }(),
                     4)
              << "  (" << FormatPercent(shift, 1) << " shift)\n";
  }
  std::cout << "\nA large drop in the Sex/Race-adjacent importances after "
               "removal confirms the proxy pathway the paper describes.\n";
  return 0;
}
