// Healthcare audit (the paper's MEPS study): the high-utilization predictor
// is race-disparate and FUME traces the violation to cohorts dominated by a
// cancer-diagnosis flag — the paper's Table 7 pattern, where CancerDx=True
// appears in four of the top five subsets. The example then simulates the
// data-steward loop: delete the worst cohort and re-measure.

#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "synth/datasets.h"
#include "util/string_util.h"

int main() {
  using namespace fume;

  synth::SynthOptions opts;
  opts.num_rows = 11081;  // paper-sized
  opts.seed = 8;
  auto bundle = synth::MakeMeps(opts);
  FUME_ABORT_NOT_OK(bundle.status());

  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 3;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  forest_config.random_depth = 2;
  forest_config.seed = 29;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());

  std::cout << "=== MEPS high-utilization audit (synthetic; sensitive "
               "attribute: Race) ===\n\n";

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.05;
  config.support_max = 0.15;
  config.max_literals = 2;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};
  auto result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  FUME_ABORT_NOT_OK(result.status());

  PrintViolationSummary(*result, config.metric, std::cout);
  PrintTopK(*result, split->train.schema(), "ME", std::cout);

  // Count how many of the top-5 involve the cancer-diagnosis flag.
  auto cancer_attr = split->train.schema().FindAttribute("CancerDx");
  FUME_ABORT_NOT_OK(cancer_attr.status());
  int with_cancer = 0;
  for (const auto& subset : result->top_k) {
    for (const Literal& lit : subset.predicate.literals()) {
      if (lit.attr == *cancer_attr) {
        ++with_cancer;
        break;
      }
    }
  }
  std::cout << "\n" << with_cancer << " of the top-" << result->top_k.size()
            << " subsets mention CancerDx (paper: 4 of 5).\n\n";

  if (result->top_k.empty()) return 0;

  // Data-steward loop: suppose the steward confirms the #1 cohort's labels
  // were collected inconsistently and removes it for retraining.
  const AttributableSubset& top = result->top_k[0];
  DareForest cleaned = model->Clone();
  {
    std::vector<int32_t> matched = top.predicate.MatchingRows(split->train);
    FUME_ABORT_NOT_OK(cleaned.DeleteRows(
        std::vector<RowId>(matched.begin(), matched.end())));
  }
  const double before = result->original_fairness;
  const double after = ComputeFairness(cleaned, split->test, bundle->group,
                                       config.metric);
  std::cout << "After unlearning the top cohort: statistical parity "
            << FormatDouble(before, 4) << " -> " << FormatDouble(after, 4)
            << ", accuracy " << FormatPercent(model->Accuracy(split->test))
            << " -> " << FormatPercent(cleaned.Accuracy(split->test)) << "\n";
  return 0;
}
