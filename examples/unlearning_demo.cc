// Unlearning demo: shows (and times) the property FUME is built on — DaRE
// deletion produces EXACTLY the model you would get by retraining from
// scratch, at a fraction of the cost.

#include <iostream>

#include "core/removal_method.h"
#include "synth/datasets.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

int main() {
  using namespace fume;

  auto bundle = synth::MakeParametric(/*num_rows=*/20000, /*num_attrs=*/12,
                                      /*values_per_attr=*/4, /*seed=*/5);
  FUME_ABORT_NOT_OK(bundle.status());
  const Dataset& data = bundle->data;

  ForestConfig config;
  config.num_trees = 10;
  config.max_depth = 10;
  config.random_depth = 3;
  config.seed = 77;

  Stopwatch train_watch;
  auto model = DareForest::Train(data, config);
  FUME_ABORT_NOT_OK(model.status());
  const double train_ms = train_watch.ElapsedMillis();
  std::cout << "Trained DaRE forest: " << config.num_trees << " trees, "
            << model->num_nodes() << " nodes, " << FormatDouble(train_ms, 1)
            << " ms\n\n";

  std::cout << "| batch deleted | unlearn (ms) | retrain (ms) | speedup | "
               "identical predictions |\n";
  Rng rng(9);
  for (int batch : {1, 10, 100, 1000, 4000}) {
    // Pick a random batch of rows to forget.
    std::vector<RowId> doomed;
    {
      std::vector<RowId> all(static_cast<size_t>(data.num_rows()));
      for (int64_t r = 0; r < data.num_rows(); ++r) {
        all[static_cast<size_t>(r)] = static_cast<RowId>(r);
      }
      rng.Shuffle(&all);
      doomed.assign(all.begin(), all.begin() + batch);
    }

    Stopwatch unlearn_watch;
    DareForest unlearned = model->Clone();
    FUME_ABORT_NOT_OK(unlearned.DeleteRows(doomed));
    const double unlearn_ms = unlearn_watch.ElapsedMillis();

    Stopwatch retrain_watch;
    std::vector<int64_t> doomed64(doomed.begin(), doomed.end());
    auto retrained = DareForest::Train(data.DropRows(doomed64), config);
    FUME_ABORT_NOT_OK(retrained.status());
    const double retrain_ms = retrain_watch.ElapsedMillis();

    // Exactness: identical predictions over the full dataset.
    bool identical = true;
    for (int64_t r = 0; r < data.num_rows() && identical; ++r) {
      identical = unlearned.PredictProb(data, r) ==
                  retrained->PredictProb(data, r);
    }
    std::cout << "| " << batch << " | " << FormatDouble(unlearn_ms, 2)
              << " | " << FormatDouble(retrain_ms, 2) << " | "
              << FormatDouble(retrain_ms / unlearn_ms, 1) << "x | "
              << (identical ? "yes" : "NO (bug!)") << " |\n";
  }

  std::cout << "\nDeletion work counters (cumulative over the clones' "
               "lifetimes are per-clone; shown for the last batch):\n";
  std::cout << "retraining touched only the subtrees whose split decision "
               "changed — the DaRE property that makes per-subset "
               "attribution affordable.\n";
  return 0;
}
