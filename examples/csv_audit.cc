// CSV audit: the bring-your-own-data path. Reads a CSV, discretizes numeric
// columns, trains, and runs FUME — everything a practitioner needs to audit
// a real dataset. With no arguments it writes and audits a small demo CSV.
//
// Usage: csv_audit [file.csv label_column sensitive_attr privileged_value]

#include <fstream>
#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "data/csv.h"
#include "data/discretizer.h"
#include "data/split.h"
#include "synth/datasets.h"

namespace {

// Writes a demo CSV (the planted-bias dataset) so the example is runnable
// with no external data.
std::string WriteDemoCsv() {
  using namespace fume;
  synth::PlantedOptions opts;
  opts.num_rows = 1500;
  auto bundle = synth::MakePlantedBias(opts);
  FUME_ABORT_NOT_OK(bundle.status());
  const std::string path = "/tmp/fume_demo.csv";
  FUME_ABORT_NOT_OK(WriteCsvFile(bundle->data, path));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fume;

  std::string path, label = "label", sensitive = "Group",
                    privileged = "Privileged";
  if (argc >= 5) {
    path = argv[1];
    label = argv[2];
    sensitive = argv[3];
    privileged = argv[4];
  } else {
    path = WriteDemoCsv();
    std::cout << "(no arguments given; auditing demo CSV " << path << ")\n\n";
  }

  CsvReadOptions read_opts;
  read_opts.label_column = label;
  auto raw = ReadCsvFile(path, read_opts);
  FUME_ABORT_NOT_OK(raw.status());

  // Discretize numeric columns (quantile bins), as in the paper's pipeline.
  DiscretizerOptions disc_opts;
  disc_opts.num_bins = 4;
  auto disc = Discretizer::Fit(*raw, disc_opts);
  FUME_ABORT_NOT_OK(disc.status());
  auto data = disc->Transform(*raw);
  FUME_ABORT_NOT_OK(data.status());

  auto sensitive_attr = data->schema().FindAttribute(sensitive);
  FUME_ABORT_NOT_OK(sensitive_attr.status());
  const int priv_code =
      data->schema().attribute(*sensitive_attr).FindCategory(privileged);
  if (priv_code < 0) {
    std::cerr << "privileged value '" << privileged << "' not found in '"
              << sensitive << "'\n";
    return 1;
  }
  GroupSpec group{*sensitive_attr, priv_code};

  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  auto split = SplitTrainTest(*data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.group = group;
  config.lattice.excluded_attrs = {group.sensitive_attr};
  auto result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  if (!result.ok()) {
    std::cout << result.status().ToString() << "\n";
    return 0;  // "no violation" is a legitimate audit outcome
  }
  std::cout << FormatReport(*result, split->train.schema(), config.metric,
                            "S");
  return 0;
}
