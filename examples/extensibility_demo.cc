// Extensibility demo (paper §5): FUME is model-agnostic — swapping the
// removal method is all it takes to debug a different model family. Here
// the same planted-bias dataset is audited twice: once with a DaRE random
// forest (unlearning via cached-statistics deletion) and once with a k-NN
// classifier (unlearning by removing neighbours), plus the ERT-style
// all-random-levels forest variant.

#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "gbdt/gbdt.h"
#include "knn/knn.h"
#include "synth/datasets.h"
#include "util/string_util.h"

namespace {

void PrintResult(const char* title, const fume::Result<fume::FumeResult>& r,
                 const fume::Schema& schema) {
  std::cout << "--- " << title << " ---\n";
  if (!r.ok()) {
    std::cout << r.status().ToString() << "\n\n";
    return;
  }
  fume::PrintViolationSummary(*r, fume::FairnessMetric::kStatisticalParity,
                              std::cout);
  fume::PrintTopK(*r, schema, "X", std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace fume;

  synth::PlantedOptions data_opts;
  data_opts.num_rows = 2000;
  auto bundle = synth::MakePlantedBias(data_opts);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());
  const Dataset& train = split->train;
  const Dataset& test = split->test;

  FumeConfig config;
  config.top_k = 3;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};

  // 1. DaRE random forest (the paper's model).
  {
    ForestConfig forest_config;
    forest_config.num_trees = 20;
    forest_config.max_depth = 7;
    forest_config.random_depth = 2;
    forest_config.seed = 31;
    auto model = DareForest::Train(train, forest_config);
    FUME_ABORT_NOT_OK(model.status());
    PrintResult("DaRE random forest",
                ExplainFairnessViolation(*model, train, test, config),
                train.schema());
  }

  // 2. ERT-style variant: every level random (HedgeCut-flavoured
  //    extremely randomized trees) — still exactly unlearnable, because the
  //    random choices are data-independent.
  {
    ForestConfig ert_config;
    ert_config.num_trees = 30;
    ert_config.max_depth = 7;
    ert_config.random_depth = 7;  // all levels random
    ert_config.seed = 31;
    auto model = DareForest::Train(train, ert_config);
    FUME_ABORT_NOT_OK(model.status());
    PrintResult("Extremely randomized trees (random_depth = max_depth)",
                ExplainFairnessViolation(*model, train, test, config),
                train.schema());
  }

  // 3. k-NN: a different non-parametric family entirely. The generic
  //    ExplainWithRemoval overload takes any RemovalMethod.
  {
    KnnConfig knn_config;
    knn_config.num_neighbors = 9;
    auto model = KnnClassifier::Train(train, knn_config);
    FUME_ABORT_NOT_OK(model.status());
    const ModelEval original =
        EvaluateKnn(*model, test, config.group, config.metric);
    KnnUnlearnRemovalMethod removal(&*model, &test, config.group,
                                    config.metric);
    PrintResult("k-nearest neighbours (k = 9)",
                ExplainWithRemoval(original, train, config, &removal),
                train.schema());
  }

  // 4. Gradient boosted trees: no cheap exact unlearning exists (boosting
  //    is sequential), so the removal method is a deterministic cascade
  //    retrain — the honest cost of the model-agnostic route.
  {
    GbdtConfig gbdt_config;
    gbdt_config.num_rounds = 30;
    gbdt_config.max_depth = 3;
    auto model = GbdtClassifier::Train(train, gbdt_config);
    FUME_ABORT_NOT_OK(model.status());
    const ModelEval original =
        EvaluateGbdt(*model, test, config.group, config.metric);
    GbdtUnlearnRemovalMethod removal(&*model, &test, config.group,
                                     config.metric);
    PrintResult("Gradient boosted trees (cascade retrain)",
                ExplainWithRemoval(original, train, config, &removal),
                train.schema());
  }

  std::cout << "All four audits search the same lattice; only the removal "
               "method changed (paper §5).\n";
  return 0;
}
