// Credit-risk audit (the paper's Example 1.1): a lender's random forest is
// 10%-ish more likely to grant good-credit predictions to older applicants.
// The audit walks all three fairness metrics, compares FUME's explanations
// with the DropUnprivUnfavor baseline, and inspects base rates inside the
// top subset — the workflow of the paper's §6.3 German Credit analysis.

#include <iostream>

#include "core/baseline.h"
#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "synth/datasets.h"
#include "util/string_util.h"

namespace {

void InspectSubset(const fume::Dataset& train,
                   const fume::AttributableSubset& subset,
                   const fume::GroupSpec& group) {
  using fume::RowId;
  // Base rates of the two groups inside the subset (paper §6.3: a higher
  // privileged base rate explains why the subset fuels model bias).
  int64_t n[2] = {0, 0}, pos[2] = {0, 0};
  for (int32_t r : subset.predicate.MatchingRows(train)) {
    const int g =
        train.Code(r, group.sensitive_attr) == group.privileged_code ? 1 : 0;
    ++n[g];
    pos[g] += train.Label(r);
  }
  auto rate = [](int64_t p, int64_t c) {
    return c == 0 ? 0.0 : static_cast<double>(p) / static_cast<double>(c);
  };
  std::cout << "    inside subset: privileged base rate "
            << fume::FormatPercent(rate(pos[1], n[1])) << " (" << n[1]
            << " rows), protected base rate "
            << fume::FormatPercent(rate(pos[0], n[0])) << " (" << n[0]
            << " rows)\n";
}

}  // namespace

int main() {
  using namespace fume;

  synth::SynthOptions opts;
  opts.seed = 4;
  auto bundle = synth::MakeGermanCredit(opts);
  FUME_ABORT_NOT_OK(bundle.status());

  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 7;
  forest_config.random_depth = 2;
  forest_config.seed = 31;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());

  std::cout << "=== German Credit audit (synthetic; sensitive attribute: "
               "Age, privileged = Senior) ===\n\n";
  FairnessSummary summary = Summarize(*model, split->test, bundle->group);
  std::cout << "accuracy " << FormatPercent(summary.accuracy)
            << ", statistical parity " << FormatDouble(summary.statistical_parity, 4)
            << ", equalized odds " << FormatDouble(summary.equalized_odds, 4)
            << ", predictive parity "
            << FormatDouble(summary.predictive_parity, 4) << "\n\n";

  for (FairnessMetric metric :
       {FairnessMetric::kStatisticalParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kPredictiveParity}) {
    FumeConfig config;
    config.top_k = 5;
    config.support_min = 0.05;
    config.support_max = 0.15;
    config.max_literals = 2;
    config.metric = metric;
    config.group = bundle->group;
    auto result =
        ExplainFairnessViolation(*model, split->train, split->test, config);
    std::cout << "--- metric: " << FairnessMetricName(metric) << " ---\n";
    if (!result.ok()) {
      std::cout << "  " << result.status().ToString() << "\n\n";
      continue;
    }
    PrintViolationSummary(*result, metric, std::cout);
    PrintTopK(*result, split->train.schema(), "GS", std::cout);
    if (!result->top_k.empty()) {
      InspectSubset(split->train, result->top_k[0], bundle->group);
    }
    std::cout << "\n";
  }

  std::cout << "--- baseline ---\n";
  auto baseline = RunDropUnprivUnfavor(split->train, split->test,
                                       forest_config, bundle->group,
                                       FairnessMetric::kStatisticalParity);
  FUME_ABORT_NOT_OK(baseline.status());
  PrintBaseline(*baseline, std::cout);
  std::cout << "FUME's subsets remove comparable bias while deleting far "
               "fewer rows and naming the cohorts a data steward can audit.\n";
  return 0;
}
