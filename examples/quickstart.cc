// Quickstart: the complete FUME pipeline in ~60 lines.
//
//   1. get an all-categorical labeled dataset (here: a synthetic one with a
//      known planted biased cohort),
//   2. split train/test and train a DaRE random forest,
//   3. observe the group-fairness violation on test data,
//   4. run FUME to find the top-k training-data subsets attributable to it.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "synth/datasets.h"

int main() {
  using namespace fume;

  // 1. Data: 2,000 rows, attributes Group/A/B/C/D/E, with a planted biased
  //    cohort (A = a1 AND B = b2) whose protected members fare much worse.
  synth::PlantedOptions data_opts;
  data_opts.num_rows = 2000;
  auto bundle = synth::MakePlantedBias(data_opts);
  FUME_ABORT_NOT_OK(bundle.status());

  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  // 2. Model: a data-removal-enabled random forest.
  ForestConfig forest_config;
  forest_config.num_trees = 20;
  forest_config.max_depth = 7;
  forest_config.random_depth = 2;
  forest_config.seed = 31;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());

  // 3. The violation: statistical parity difference on test predictions.
  const double fairness =
      ComputeFairness(*model, split->test, bundle->group,
                      FairnessMetric::kStatisticalParity);
  std::cout << "Test accuracy:        " << model->Accuracy(split->test)
            << "\nStatistical parity:   " << fairness
            << "  (negative = biased against the protected group)\n\n";

  // 4. Explain it: top-5 predicate subsets in the 2-25% support range, at
  //    most 2 literals, searched over the non-sensitive attributes.
  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};
  auto result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  FUME_ABORT_NOT_OK(result.status());

  std::cout << FormatReport(*result, split->train.schema(),
                            config.metric, "T");
  std::cout << "\nThe planted cohort is (A = a1) AND (B = b2) — FUME should "
               "rank it first.\n";
  return 0;
}
